"""Workload specifications.

Each paper workload (Table 4) is modeled as a parameterized synthetic
LLC-miss stream.  The protection engine only ever sees that stream, so
the parameters that matter are the ones the paper characterizes:

* the *access-pattern class* -- what fraction of traffic belongs to
  64B / 512B / 4KB / 32KB stream chunks (Fig. 4), expressed here as
  ``class_mix`` (request-level fractions per burst granularity);
* the *traffic intensity* -- requests per cycle (Table 4's s/m/l),
  expressed through the gap parameters;
* burstiness -- NPUs issue dense bulk bursts separated by long compute
  gaps, CPUs issue isolated misses, GPUs sit in between (Sec. 5.4).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from repro.common.constants import CACHELINE_BYTES, GRANULARITIES
from repro.common.errors import ConfigError
from repro.common.types import DeviceKind


@dataclass(frozen=True)
class WorkloadSpec:
    """Parameters of one synthetic workload.

    Attributes:
        name: workload label used in figures (e.g. ``"alex"``).
        kind: device class the workload runs on.
        footprint_bytes: memory span the workload touches.
        class_mix: request-level fraction of traffic per burst
            granularity in bytes; must sum to 1.
        write_fraction: probability a burst is a write burst.
        gap_fine: mean gap (reference cycles) between fine accesses.
        gap_burst: mean gap between lines *within* a coarse burst.
        gap_between_bursts: mean compute gap separating bursts.
        region_reuse: probability a new burst revisits a recent region
            (re-streaming is what makes detected granularity pay off).
        pool_size: how many recent regions are candidates for reuse.
        scatter_p: probability a fine run degenerates to one isolated
            random line (pointer-chase behaviour); the rest are short
            sequential runs.
        partial_burst_p: probability a coarse burst stops early
            (boundary tiles, early termination) -- the misprediction
            source that penalizes over-coarse granularity.
        mixed_chunk_p: probability a fine run lands inside a chunk the
            workload also streams (shared data structures), creating
            the mixed access patterns of Sec. 3.3.
        pattern_label: paper classification (ff / f / c / cc / d).
        traffic_label: paper traffic class (s / m / l).
    """

    name: str
    kind: DeviceKind
    footprint_bytes: int
    class_mix: Dict[int, float]
    write_fraction: float
    gap_fine: float
    gap_burst: float
    gap_between_bursts: float
    region_reuse: float = 0.75
    pool_size: int = 12
    fine_run_max: int = 10
    scatter_p: float = 0.4
    partial_burst_p: float = 0.04
    mixed_chunk_p: float = 0.05
    pattern_label: str = "ff"
    traffic_label: str = "m"

    def __post_init__(self) -> None:
        total = sum(self.class_mix.values())
        if abs(total - 1.0) > 1e-6:
            raise ConfigError(
                f"{self.name}: class_mix sums to {total}, expected 1.0"
            )
        for granularity in self.class_mix:
            if granularity not in GRANULARITIES:
                raise ConfigError(
                    f"{self.name}: unsupported burst granularity {granularity}"
                )
        if self.footprint_bytes < GRANULARITIES[-1]:
            raise ConfigError(f"{self.name}: footprint below one chunk")
        if not 0.0 <= self.write_fraction <= 1.0:
            raise ConfigError(f"{self.name}: bad write fraction")

    def burst_weights(self) -> Dict[int, float]:
        """Burst-level selection weights giving request-level ``class_mix``.

        A burst at granularity ``g`` emits ``g/64`` requests, so burst
        weights are the request fractions divided by the burst length.
        """
        return {
            granularity: fraction / (granularity // CACHELINE_BYTES)
            for granularity, fraction in self.class_mix.items()
            if fraction > 0.0
        }

    @property
    def dominant_granularity(self) -> int:
        """The access class carrying the most traffic.

        This is what a per-device static configuration uses: the paper
        notes that per-device granularity "only reflects the majority
        of data accesses, causing mispredictions on the other accesses"
        (Sec. 3.3) -- the minority classes are exactly what it gets
        wrong.
        """
        return max(self.class_mix, key=lambda g: self.class_mix[g])

    @property
    def coarse_fraction(self) -> float:
        """Fraction of traffic in 4KB-or-coarser stream chunks."""
        return sum(
            fraction
            for granularity, fraction in self.class_mix.items()
            if granularity >= GRANULARITIES[2]
        )
