"""Trace persistence: save/load miss traces in a portable text format.

Lets users bring their own traces (e.g. converted from ChampSim or
MGPUSim dumps) and replay them through the schemes.  The format is
deliberately trivial -- gzip-compressed lines of

    <gap_cycles> <hex address> <R|W>

with ``#``-prefixed header lines carrying the workload metadata needed
to rebuild the :class:`~repro.workloads.generator.Trace` wrapper.
"""

from __future__ import annotations

import gzip
from pathlib import Path
from typing import List, Union

from repro.common.constants import CACHELINE_BYTES, CHUNK_BYTES
from repro.common.errors import ConfigError
from repro.common.types import DeviceKind
from repro.workloads.generator import Trace, TraceEntry
from repro.workloads.spec import WorkloadSpec

_FORMAT_VERSION = 1


def save_trace(trace: Trace, path: Union[str, Path]) -> None:
    """Write a trace to ``path`` (gzip text)."""
    path = Path(path)
    with gzip.open(path, "wt", encoding="ascii") as handle:
        handle.write(f"# repro-trace v{_FORMAT_VERSION}\n")
        handle.write(f"# name {trace.spec.name}\n")
        handle.write(f"# kind {trace.spec.kind.value}\n")
        handle.write(f"# footprint {trace.spec.footprint_bytes}\n")
        handle.write(f"# base {trace.base_addr}\n")
        for gap, addr, is_write in trace.entries:
            handle.write(f"{gap:.4f} {addr:x} {'W' if is_write else 'R'}\n")


def load_trace(path: Union[str, Path]) -> Trace:
    """Read a trace written by :func:`save_trace` (or hand-converted)."""
    path = Path(path)
    meta = {"name": path.stem, "kind": "cpu", "footprint": 0, "base": 0}
    entries: List[TraceEntry] = []
    with gzip.open(path, "rt", encoding="ascii") as handle:
        for line_no, line in enumerate(handle, 1):
            line = line.strip()
            if not line:
                continue
            if line.startswith("#"):
                parts = line[1:].split()
                if len(parts) >= 2 and parts[0] in meta:
                    meta[parts[0]] = parts[1]
                continue
            fields = line.split()
            if len(fields) != 3 or fields[2] not in ("R", "W"):
                raise ConfigError(
                    f"{path}:{line_no}: expected '<gap> <hexaddr> <R|W>', "
                    f"got {line!r}"
                )
            gap = float(fields[0])
            addr = int(fields[1], 16)
            if gap < 0 or addr < 0:
                raise ConfigError(f"{path}:{line_no}: negative gap/address")
            if addr % CACHELINE_BYTES:
                addr -= addr % CACHELINE_BYTES  # line-align foreign traces
            entries.append((gap, addr, fields[2] == "W"))
    if not entries:
        raise ConfigError(f"{path}: trace has no requests")

    base = int(meta["base"])
    max_addr = max(addr for _, addr, _ in entries) + CACHELINE_BYTES
    footprint = max(
        int(meta["footprint"]) or 0, max_addr - base, CHUNK_BYTES
    )
    spec = WorkloadSpec(
        name=str(meta["name"]),
        kind=DeviceKind(str(meta["kind"])),
        footprint_bytes=footprint,
        class_mix={64: 1.0},  # informational; the trace speaks for itself
        write_fraction=0.5,
        gap_fine=1.0,
        gap_burst=1.0,
        gap_between_bursts=1.0,
        pattern_label="file",
        traffic_label="file",
    )
    return Trace(spec=spec, base_addr=base, entries=tuple(entries))
