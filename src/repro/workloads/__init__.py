"""Workload substrate: calibrated synthetics, model/kernel walkers, I/O."""

from repro.workloads.generator import Trace, generate_trace
from repro.workloads.kernels import GPU_KERNELS, generate_kernel_trace
from repro.workloads.models import NETWORKS, generate_model_trace
from repro.workloads.phases import generate_phased_trace
from repro.workloads.trace_io import load_trace, save_trace
from repro.workloads.registry import (
    CPU_WORKLOADS,
    GPU_WORKLOADS,
    NPU_WORKLOADS,
    WORKLOADS,
    get_workload,
    workloads_for,
)
from repro.workloads.spec import WorkloadSpec

__all__ = [
    "Trace",
    "generate_trace",
    "GPU_KERNELS",
    "generate_kernel_trace",
    "NETWORKS",
    "generate_model_trace",
    "generate_phased_trace",
    "load_trace",
    "save_trace",
    "CPU_WORKLOADS",
    "GPU_WORKLOADS",
    "NPU_WORKLOADS",
    "WORKLOADS",
    "get_workload",
    "workloads_for",
    "WorkloadSpec",
]
