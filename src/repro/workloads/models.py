"""Model-driven NPU trace generation: network -> tensor-tiled miss stream.

The paper's NPU traces come from mNPUsim walking real networks
(AlexNet, Yolo-Tiny, NCF, DLRM, an LSTM RNN) on a 45x45 systolic array
with a 2.2MB scratchpad (Table 3).  This module reproduces that walk
analytically: each layer's weight/input/output tensors get address
ranges, execution proceeds tile by tile (weights stream in 32KB tiles,
activations in row blocks, embeddings as sparse row gathers), and the
compute gap between transfers follows the systolic array's throughput.

The resulting traces have the structure the paper's detector exploits:
weight tiles are re-streamed every batch (coarse, read-only),
activations are produced then consumed once (coarse, written), and
embedding gathers stay fine/512B-grained.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Iterable, List, Tuple

from repro.common.address import align_up
from repro.common.constants import CACHELINE_BYTES, CHUNK_BYTES
from repro.common.errors import ConfigError
from repro.common.rng import rng_for
from repro.common.types import DeviceKind
from repro.workloads.generator import Trace, TraceEntry
from repro.workloads.spec import WorkloadSpec

#: Systolic array MACs per cycle (45 x 45, paper Table 3).
SYSTOLIC_MACS_PER_CYCLE = 45 * 45

#: Weight/activation element width (INT8, paper Table 3).
ELEMENT_BYTES = 1

#: Tile size for streaming weights/activations (one chunk).
TILE_BYTES = CHUNK_BYTES


@dataclass(frozen=True)
class ConvLayer:
    """2D convolution: streams weights and input rows, writes outputs."""

    name: str
    in_channels: int
    out_channels: int
    kernel: int
    stride: int
    in_size: int  # square input feature map

    @property
    def out_size(self) -> int:
        return max(1, (self.in_size - self.kernel) // self.stride + 1)

    @property
    def weight_bytes(self) -> int:
        return (
            self.out_channels
            * self.in_channels
            * self.kernel
            * self.kernel
            * ELEMENT_BYTES
        )

    @property
    def input_bytes(self) -> int:
        return self.in_channels * self.in_size * self.in_size * ELEMENT_BYTES

    @property
    def output_bytes(self) -> int:
        return self.out_channels * self.out_size * self.out_size * ELEMENT_BYTES

    @property
    def macs(self) -> int:
        return (
            self.out_size
            * self.out_size
            * self.out_channels
            * self.in_channels
            * self.kernel
            * self.kernel
        )


@dataclass(frozen=True)
class FCLayer:
    """Fully connected layer (also models LSTM gate matrices)."""

    name: str
    in_dim: int
    out_dim: int

    @property
    def weight_bytes(self) -> int:
        return self.in_dim * self.out_dim * ELEMENT_BYTES

    @property
    def input_bytes(self) -> int:
        return self.in_dim * ELEMENT_BYTES

    @property
    def output_bytes(self) -> int:
        return self.out_dim * ELEMENT_BYTES

    @property
    def macs(self) -> int:
        return self.in_dim * self.out_dim


@dataclass(frozen=True)
class EmbeddingLayer:
    """Sparse embedding gathers (recommendation models).

    Each lookup reads one table row -- a short, effectively random
    burst that never forms a stream chunk.  This is why the paper's
    ncf/dlrm stay comparatively fine-grained despite being NPU
    workloads.
    """

    name: str
    rows: int
    dim: int
    lookups: int  # gathers per batch

    @property
    def weight_bytes(self) -> int:
        return self.rows * self.dim * ELEMENT_BYTES

    @property
    def row_bytes(self) -> int:
        return max(CACHELINE_BYTES, self.dim * ELEMENT_BYTES)

    @property
    def output_bytes(self) -> int:
        return self.lookups * self.dim * ELEMENT_BYTES

    @property
    def macs(self) -> int:
        return self.lookups * self.dim


Layer = object  # ConvLayer | FCLayer | EmbeddingLayer

#: Network zoo used by the paper's NPU workloads (shapes follow the
#: original models, scaled where the full model would dwarf the
#: simulated footprint).
NETWORKS: Dict[str, Tuple[Layer, ...]] = {
    "alexnet": (
        ConvLayer("conv1", 3, 96, 11, 4, 227),
        ConvLayer("conv2", 96, 256, 5, 1, 27),
        ConvLayer("conv3", 256, 384, 3, 1, 13),
        ConvLayer("conv4", 384, 384, 3, 1, 13),
        ConvLayer("conv5", 384, 256, 3, 1, 13),
        FCLayer("fc6", 9216, 4096),
        FCLayer("fc7", 4096, 4096),
        FCLayer("fc8", 4096, 1000),
    ),
    "yolo_tiny": (
        ConvLayer("conv1", 3, 16, 3, 1, 224),
        ConvLayer("conv2", 16, 32, 3, 1, 112),
        ConvLayer("conv3", 32, 64, 3, 1, 56),
        ConvLayer("conv4", 64, 128, 3, 1, 28),
        ConvLayer("conv5", 128, 256, 3, 1, 14),
        ConvLayer("conv6", 256, 512, 3, 1, 7),
        ConvLayer("conv7", 512, 512, 3, 1, 7),
        ConvLayer("conv8", 512, 425, 1, 1, 7),
    ),
    "dlrm": (
        EmbeddingLayer("emb0", 200_000, 64, 128),
        EmbeddingLayer("emb1", 100_000, 64, 128),
        EmbeddingLayer("emb2", 50_000, 64, 128),
        FCLayer("bot0", 13, 512),
        FCLayer("bot1", 512, 256),
        FCLayer("top0", 479, 1024),
        FCLayer("top1", 1024, 1024),
        FCLayer("top2", 1024, 1),
    ),
    "ncf": (
        EmbeddingLayer("user_emb", 138_000, 64, 256),
        EmbeddingLayer("item_emb", 27_000, 64, 256),
        FCLayer("mlp0", 128, 256),
        FCLayer("mlp1", 256, 128),
        FCLayer("mlp2", 128, 64),
        FCLayer("mlp3", 64, 1),
    ),
    "sfrnn": (
        # Selfish sparse RNN: stacked LSTM gate matrices.
        FCLayer("lstm1_ih", 1024, 4 * 1024),
        FCLayer("lstm1_hh", 1024, 4 * 1024),
        FCLayer("lstm2_ih", 1024, 4 * 1024),
        FCLayer("lstm2_hh", 1024, 4 * 1024),
        FCLayer("proj", 1024, 1024),
    ),
}


@dataclass(frozen=True)
class TensorMap:
    """Address layout of one network's tensors."""

    weight_base: Dict[str, int]
    activation_base: Dict[str, int]
    total_bytes: int


def plan_tensors(layers: Iterable[Layer], base_addr: int = 0) -> TensorMap:
    """Assign chunk-aligned address ranges to every tensor."""
    cursor = base_addr
    weight_base: Dict[str, int] = {}
    activation_base: Dict[str, int] = {}
    for layer in layers:
        weight_base[layer.name] = cursor
        cursor = align_up(cursor + layer.weight_bytes, CHUNK_BYTES)
    for layer in layers:
        activation_base[layer.name] = cursor
        cursor = align_up(cursor + max(64, layer.output_bytes), CHUNK_BYTES)
    return TensorMap(weight_base, activation_base, cursor - base_addr)


def _npu_spec(network: str, total_bytes: int) -> WorkloadSpec:
    """A descriptive spec for traces produced by the model walker."""
    return WorkloadSpec(
        name=f"{network}_model",
        kind=DeviceKind.NPU,
        footprint_bytes=max(CHUNK_BYTES, align_up(total_bytes, CHUNK_BYTES)),
        class_mix={64: 1.0},  # informational only; the walker decides
        write_fraction=0.3,
        gap_fine=10.0,
        gap_burst=1.0,
        gap_between_bursts=100.0,
        pattern_label="model",
        traffic_label="model",
    )


def scale_network(layers, scale: int):
    """Shrink a network's channel/dimension counts by ``scale``.

    Useful for fast tests and demos: the trace *structure* (tiled
    weight streams, sparse gathers, activation hand-off) is preserved
    while byte volumes drop roughly quadratically.
    """
    if scale <= 1:
        return layers
    scaled = []
    for layer in layers:
        if isinstance(layer, ConvLayer):
            scaled.append(
                ConvLayer(
                    layer.name,
                    max(1, layer.in_channels // scale),
                    max(1, layer.out_channels // scale),
                    layer.kernel,
                    layer.stride,
                    layer.in_size,
                )
            )
        elif isinstance(layer, FCLayer):
            scaled.append(
                FCLayer(
                    layer.name,
                    max(1, layer.in_dim // scale),
                    max(1, layer.out_dim // scale),
                )
            )
        else:
            scaled.append(
                EmbeddingLayer(
                    layer.name,
                    max(1, layer.rows // scale),
                    layer.dim,
                    max(1, layer.lookups // scale),
                )
            )
    return tuple(scaled)


def generate_model_trace(
    network: str,
    batches: int = 2,
    base_addr: int = 0,
    seed: int = 0,
    gap_per_line: float = 0.8,
    scale: int = 1,
) -> Trace:
    """Walk ``network`` for ``batches`` inference passes -> miss trace.

    Per layer and batch:

    * weights stream in sequentially, tile by tile (read bursts over
      the same addresses every batch -- prime promotion targets);
    * embedding layers gather random rows instead (fine traffic);
    * the previous layer's activations are read, this layer's written;
    * between tiles the systolic array computes for
      ``macs_per_tile / (45*45)`` cycles, producing the bursty gap
      structure of Sec. 5.4.

    ``scale`` shrinks the network (see :func:`scale_network`) for fast
    runs; ``scale=1`` walks the full model.
    """
    try:
        layers = NETWORKS[network]
    except KeyError:
        raise ConfigError(
            f"unknown network {network!r}; known: {sorted(NETWORKS)}"
        ) from None
    layers = scale_network(layers, scale)

    rng = rng_for(f"model:{network}:{base_addr}", seed)
    tensors = plan_tensors(layers, base_addr)
    entries: List[TraceEntry] = []

    def stream(base: int, nbytes: int, is_write: bool, gap_first: float) -> None:
        lines = max(1, math.ceil(nbytes / CACHELINE_BYTES))
        for index in range(lines):
            gap = gap_first if index == 0 else gap_per_line
            entries.append((gap, base + index * CACHELINE_BYTES, is_write))

    for batch in range(batches):
        previous_activation = None
        for layer in layers:
            weight_base = tensors.weight_base[layer.name]
            activation = tensors.activation_base[layer.name]
            compute_gap = max(
                1.0, layer.macs / SYSTOLIC_MACS_PER_CYCLE / 8.0
            )

            if isinstance(layer, EmbeddingLayer):
                # Sparse gathers: random rows, short bursts.
                for _ in range(layer.lookups):
                    row = rng.randrange(layer.rows)
                    addr = weight_base + row * layer.row_bytes
                    addr -= addr % CACHELINE_BYTES
                    stream(addr, layer.row_bytes, False, gap_first=4.0)
                stream(activation, layer.output_bytes, True, compute_gap)
                previous_activation = (activation, layer.output_bytes)
                continue

            # Dense layer: stream weights tile by tile.
            remaining = layer.weight_bytes
            offset = 0
            while remaining > 0:
                tile = min(TILE_BYTES, remaining)
                stream(weight_base + offset, tile, False, compute_gap)
                offset += tile
                remaining -= tile
            # Read the producer's activations, write our own.
            if previous_activation is not None:
                in_base, in_bytes = previous_activation
                stream(in_base, min(in_bytes, TILE_BYTES * 4), False, 2.0)
            stream(
                activation,
                min(max(64, layer.output_bytes), TILE_BYTES * 4),
                True,
                2.0,
            )
            previous_activation = (activation, max(64, layer.output_bytes))

    spec = _npu_spec(network, tensors.total_bytes)
    return Trace(spec=spec, base_addr=base_addr, entries=tuple(entries))


def network_summary(network: str) -> List[Dict[str, object]]:
    """Per-layer byte/MAC summary (useful for docs and tests)."""
    layers = NETWORKS[network]
    rows = []
    for layer in layers:
        rows.append(
            {
                "layer": layer.name,
                "kind": type(layer).__name__,
                "weight_bytes": layer.weight_bytes,
                "output_bytes": layer.output_bytes,
                "macs": layer.macs,
            }
        )
    return rows
