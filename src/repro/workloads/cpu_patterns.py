"""CPU access-pattern walkers: algorithm -> LLC-miss stream.

The ChampSim substitute at algorithm fidelity: each of the paper's CPU
workloads maps to a classic memory access pattern whose miss behaviour
we walk explicitly:

* ``stream_triad``    -- bw: a[i] = b[i] + s*c[i] over large arrays;
* ``pointer_chase``   -- mcf: network-simplex arc walking (dependent
  random hops through a node pool);
* ``bvh_traversal``   -- ray: packet traversal of a bounding-volume
  hierarchy (tree descent with spatial locality at the leaves);
* ``parse_mix``       -- xal / gcc: sequential token scan interleaved
  with hash/symbol-table lookups;
* ``stream_cluster``  -- sc: distance evaluations of streamed points
  against a small resident center set.
"""

from __future__ import annotations

import math
from typing import Callable, Dict, List

from repro.common.address import align_up
from repro.common.constants import CACHELINE_BYTES, CHUNK_BYTES
from repro.common.errors import ConfigError
from repro.common.rng import rng_for
from repro.common.types import DeviceKind
from repro.workloads.generator import Trace, TraceEntry
from repro.workloads.spec import WorkloadSpec

#: Double-precision elements for the numeric kernels.
ELEM = 8

#: Cycles of compute per miss for latency-bound patterns.
GAP_DEPENDENT = 12.0

#: Cycles between misses in streaming phases.
GAP_STREAM = 6.0


def _spec(name: str, footprint: int) -> WorkloadSpec:
    return WorkloadSpec(
        name=f"{name}_pattern",
        kind=DeviceKind.CPU,
        footprint_bytes=max(CHUNK_BYTES, align_up(footprint, CHUNK_BYTES)),
        class_mix={64: 1.0},  # informational; the walker decides
        write_fraction=0.3,
        gap_fine=10.0,
        gap_burst=1.0,
        gap_between_bursts=100.0,
        pattern_label="pattern",
        traffic_label="pattern",
    )


def stream_triad(
    array_bytes: int = 4 << 20, iterations: int = 2, base_addr: int = 0
) -> Trace:
    """STREAM triad: read b, read c, write a -- three marching fronts."""
    a_base = base_addr
    b_base = align_up(a_base + array_bytes, CHUNK_BYTES)
    c_base = align_up(b_base + array_bytes, CHUNK_BYTES)
    entries: List[TraceEntry] = []
    lines = array_bytes // CACHELINE_BYTES
    for _ in range(iterations):
        for line in range(lines):
            off = line * CACHELINE_BYTES
            entries.append((GAP_STREAM, b_base + off, False))
            entries.append((GAP_STREAM, c_base + off, False))
            entries.append((GAP_STREAM, a_base + off, True))
    footprint = c_base + array_bytes - base_addr
    return Trace(_spec("bw", footprint), base_addr, tuple(entries))


def pointer_chase(
    nodes: int = 65_536,
    hops: int = 4_000,
    node_bytes: int = 128,
    base_addr: int = 0,
    seed: int = 0,
) -> Trace:
    """Dependent random walk through a node pool (mcf-style)."""
    rng = rng_for(f"chase:{nodes}", seed)
    entries: List[TraceEntry] = []
    current = 0
    for _ in range(hops):
        addr = base_addr + current * node_bytes
        addr -= addr % CACHELINE_BYTES
        entries.append((GAP_DEPENDENT, addr, False))
        if rng.random() < 0.25:  # occasional arc-cost update
            entries.append((2.0, addr + CACHELINE_BYTES, True))
        current = rng.randrange(nodes)
    footprint = nodes * node_bytes
    return Trace(_spec("mcf", footprint), base_addr, tuple(entries))


def bvh_traversal(
    leaves: int = 16_384,
    rays: int = 600,
    base_addr: int = 0,
    seed: int = 0,
) -> Trace:
    """Ray-packet BVH descent: log-depth node reads per ray, coherent
    leaf bursts for nearby rays."""
    rng = rng_for(f"bvh:{leaves}", seed)
    depth = max(1, int(math.log2(leaves)))
    node_bytes = 64
    tri_base = align_up(base_addr + (2 * leaves) * node_bytes, CHUNK_BYTES)
    entries: List[TraceEntry] = []
    for _ in range(rays):
        node = 1
        for _ in range(depth):  # dependent descent
            addr = base_addr + node * node_bytes
            entries.append((GAP_DEPENDENT, addr, False))
            node = 2 * node + (rng.random() < 0.5)
        leaf = node - leaves
        leaf = max(0, min(leaves - 1, leaf))
        # Triangle data at the leaf: a short coherent burst.
        for i in range(3):
            entries.append(
                (2.0, tri_base + (leaf * 4 + i) * CACHELINE_BYTES, False)
            )
    footprint = tri_base + leaves * 4 * CACHELINE_BYTES - base_addr
    return Trace(_spec("ray", footprint), base_addr, tuple(entries))


def parse_mix(
    text_bytes: int = 2 << 20,
    symbols: int = 32_768,
    base_addr: int = 0,
    seed: int = 0,
) -> Trace:
    """Sequential token scan + hash-table symbol lookups (xal/gcc)."""
    rng = rng_for(f"parse:{text_bytes}", seed)
    text_base = base_addr
    table_base = align_up(text_base + text_bytes, CHUNK_BYTES)
    entries: List[TraceEntry] = []
    for line in range(text_bytes // CACHELINE_BYTES):
        entries.append((GAP_STREAM, text_base + line * CACHELINE_BYTES, False))
        # ~1 symbol lookup per couple of text lines; some insertions.
        if rng.random() < 0.5:
            slot = rng.randrange(symbols)
            addr = table_base + slot * CACHELINE_BYTES
            entries.append((GAP_DEPENDENT, addr, rng.random() < 0.2))
    footprint = table_base + symbols * CACHELINE_BYTES - base_addr
    return Trace(_spec("xal", footprint), base_addr, tuple(entries))


def stream_cluster(
    points: int = 30_000,
    centers: int = 256,
    dims_bytes: int = 128,
    base_addr: int = 0,
    seed: int = 0,
) -> Trace:
    """Streaming k-center clustering: each point read once, compared
    against a hot center set (sc of the AutoDrive pipeline)."""
    rng = rng_for(f"cluster:{points}", seed)
    point_base = base_addr
    center_base = align_up(point_base + points * dims_bytes, CHUNK_BYTES)
    entries: List[TraceEntry] = []
    for point in range(points):
        addr = point_base + point * dims_bytes
        for off in range(0, dims_bytes, CACHELINE_BYTES):
            entries.append((GAP_STREAM, addr + off, False))
        # A few center distance reads (hot, mostly cached in reality --
        # emit sparsely).
        if rng.random() < 0.2:
            center = rng.randrange(centers)
            entries.append(
                (GAP_DEPENDENT, center_base + center * dims_bytes, False)
            )
        if rng.random() < 0.01:  # center update
            center = rng.randrange(centers)
            entries.append(
                (2.0, center_base + center * dims_bytes, True)
            )
    footprint = center_base + centers * dims_bytes - base_addr
    return Trace(_spec("sc", footprint), base_addr, tuple(entries))


#: Pattern registry keyed by the paper's CPU workload names.
CPU_PATTERNS: Dict[str, Callable[..., Trace]] = {
    "bw": stream_triad,
    "mcf": pointer_chase,
    "ray": bvh_traversal,
    "xal": parse_mix,
    "gcc": parse_mix,  # same structural mix, different constants
    "sc": stream_cluster,
}


def generate_pattern_trace(name: str, base_addr: int = 0, **kwargs) -> Trace:
    """Walk the CPU access pattern behind one of the paper's workloads."""
    try:
        pattern = CPU_PATTERNS[name]
    except KeyError:
        raise ConfigError(
            f"unknown CPU pattern {name!r}; known: {sorted(CPU_PATTERNS)}"
        ) from None
    return pattern(base_addr=base_addr, **kwargs)
