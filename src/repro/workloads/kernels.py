"""GPU kernel walkers: algorithm -> coalesced LLC-miss stream.

The substitute for MGPUSim's traces: each of the paper's GPU workloads
corresponds to a classic kernel whose memory behaviour we walk
explicitly at thread-block granularity (coalesced 64B transactions):

* ``tiled_gemm``     -- mm: square tiled matrix multiply;
* ``stencil2d``      -- sten: 5-point stencil row sweep;
* ``csr_pagerank``   -- pr: CSR traversal (sequential row pointers +
  irregular neighbour gathers);
* ``syr2k_panels``   -- syr2k: symmetric rank-2k panel updates;
* ``floyd_warshall`` -- floyd: k-phase row/column sweeps (the diverse
  mix of Table 4).
"""

from __future__ import annotations

import math
from typing import Callable, Dict, List

from repro.common.address import align_up
from repro.common.constants import CACHELINE_BYTES, CHUNK_BYTES
from repro.common.errors import ConfigError
from repro.common.rng import rng_for
from repro.common.types import DeviceKind
from repro.workloads.generator import Trace, TraceEntry
from repro.workloads.spec import WorkloadSpec

#: FP32 elements (MGPUSim workloads are float kernels).
ELEM = 4

#: Issue gap between coalesced transactions of one wavefront.
GAP_COALESCED = 0.5

#: Compute gap between thread-block phases.
GAP_PHASE = 40.0


def _spec(name: str, footprint: int) -> WorkloadSpec:
    return WorkloadSpec(
        name=f"{name}_kernel",
        kind=DeviceKind.GPU,
        footprint_bytes=max(CHUNK_BYTES, align_up(footprint, CHUNK_BYTES)),
        class_mix={64: 1.0},  # informational; the walker decides
        write_fraction=0.3,
        gap_fine=10.0,
        gap_burst=1.0,
        gap_between_bursts=100.0,
        pattern_label="kernel",
        traffic_label="kernel",
    )


class _Emitter:
    def __init__(self) -> None:
        self.entries: List[TraceEntry] = []

    def burst(self, base: int, nbytes: int, is_write: bool, first_gap: float) -> None:
        lines = max(1, math.ceil(nbytes / CACHELINE_BYTES))
        base -= base % CACHELINE_BYTES
        for index in range(lines):
            gap = first_gap if index == 0 else GAP_COALESCED
            self.entries.append((gap, base + index * CACHELINE_BYTES, is_write))

    def touch(self, addr: int, is_write: bool, gap: float) -> None:
        self.entries.append((gap, addr - addr % CACHELINE_BYTES, is_write))


def tiled_gemm(n: int = 512, tile: int = 64, base_addr: int = 0) -> Trace:
    """C = A x B with square tiling: tile-panel streams + C writeback."""
    a_base = base_addr
    b_base = align_up(a_base + n * n * ELEM, CHUNK_BYTES)
    c_base = align_up(b_base + n * n * ELEM, CHUNK_BYTES)
    out = _Emitter()
    for ti in range(0, n, tile):
        for tj in range(0, n, tile):
            for tk in range(0, n, tile):
                # A tile rows (sequential), B tile rows (strided panel).
                for row in range(0, tile, 8):  # 8-row granularity
                    out.burst(
                        a_base + ((ti + row) * n + tk) * ELEM,
                        tile * ELEM * 8,
                        False,
                        GAP_PHASE if row == 0 else 2.0,
                    )
                for row in range(0, tile, 8):
                    out.burst(
                        b_base + ((tk + row) * n + tj) * ELEM,
                        tile * ELEM * 8,
                        False,
                        2.0,
                    )
            out.burst(
                c_base + (ti * n + tj) * ELEM, tile * tile * ELEM, True, 4.0
            )
    footprint = c_base + n * n * ELEM - base_addr
    return Trace(_spec("mm", footprint), base_addr, tuple(out.entries))


def stencil2d(n: int = 1024, sweeps: int = 2, base_addr: int = 0) -> Trace:
    """5-point stencil: each output row reads three input rows."""
    in_base = base_addr
    out_base = align_up(in_base + n * n * ELEM, CHUNK_BYTES)
    row_bytes = n * ELEM
    out = _Emitter()
    block = 4
    for _ in range(sweeps):
        for row in range(1, n - 1, block):
            rows_out = min(block, n - 1 - row)
            # A 5-point stencil block of `rows_out` outputs reads rows
            # row-1 .. row+rows_out: halo rows are re-read by the
            # neighbouring block.
            for read_row in range(row - 1, row + rows_out + 1):
                out.burst(
                    in_base + read_row * row_bytes,
                    row_bytes,
                    False,
                    GAP_PHASE if read_row == row - 1 else 1.0,
                )
            out.burst(
                out_base + row * row_bytes, row_bytes * rows_out, True, 1.0
            )
    footprint = out_base + n * n * ELEM - base_addr
    return Trace(_spec("sten", footprint), base_addr, tuple(out.entries))


def csr_pagerank(
    nodes: int = 65_536, avg_degree: int = 8, iterations: int = 2,
    base_addr: int = 0, seed: int = 0,
) -> Trace:
    """PageRank over CSR: sequential row pointers, irregular gathers."""
    rng = rng_for(f"pr:{nodes}", seed)
    edges = nodes * avg_degree
    rowptr_base = base_addr
    colidx_base = align_up(rowptr_base + (nodes + 1) * ELEM, CHUNK_BYTES)
    rank_base = align_up(colidx_base + edges * ELEM, CHUNK_BYTES)
    out_base = align_up(rank_base + nodes * ELEM, CHUNK_BYTES)
    out = _Emitter()
    for _ in range(iterations):
        edge_cursor = 0
        for node in range(0, nodes, 512):
            # One wavefront's worth of row pointers: sequential.
            out.burst(rowptr_base + node * ELEM, 512 * ELEM, False, GAP_PHASE)
            # Its edges: sequential col_idx block...
            block_edges = 512 * avg_degree
            out.burst(
                colidx_base + edge_cursor * ELEM,
                block_edges * ELEM,
                False,
                1.0,
            )
            edge_cursor += block_edges
            # ...but the rank gathers those edges point at are random.
            for _ in range(block_edges // 16):  # 64B coalescing factor
                victim = rng.randrange(nodes)
                out.touch(rank_base + victim * ELEM, False, 1.0)
            out.burst(out_base + node * ELEM, 512 * ELEM, True, 1.0)
    footprint = out_base + nodes * ELEM - base_addr
    return Trace(_spec("pr", footprint), base_addr, tuple(out.entries))


def syr2k_panels(n: int = 384, k: int = 64, base_addr: int = 0) -> Trace:
    """C += A*B' + B*A': panel reads over A/B, triangular C updates."""
    a_base = base_addr
    b_base = align_up(a_base + n * k * ELEM, CHUNK_BYTES)
    c_base = align_up(b_base + n * k * ELEM, CHUNK_BYTES)
    out = _Emitter()
    panel = 32
    for ci in range(0, n, panel):
        for cj in range(0, ci + panel, panel):
            out.burst(a_base + ci * k * ELEM, panel * k * ELEM, False, GAP_PHASE)
            out.burst(b_base + cj * k * ELEM, panel * k * ELEM, False, 2.0)
            # Triangular C tile: read-modify-write.
            out.burst(c_base + (ci * n + cj) * ELEM, panel * panel * ELEM, False, 2.0)
            out.burst(c_base + (ci * n + cj) * ELEM, panel * panel * ELEM, True, 2.0)
    footprint = c_base + n * n * ELEM - base_addr
    return Trace(_spec("syr2k", footprint), base_addr, tuple(out.entries))


def floyd_warshall(n: int = 512, phases: int = 24, base_addr: int = 0) -> Trace:
    """k-phase APSP sweeps: row k broadcast + full-matrix row updates."""
    dist_base = base_addr
    row_bytes = n * ELEM
    out = _Emitter()
    for k in range(phases):
        out.burst(dist_base + k * row_bytes, row_bytes, False, GAP_PHASE)
        for row in range(0, n, 16):
            out.burst(dist_base + row * row_bytes, row_bytes, False, 1.0)
            out.burst(dist_base + row * row_bytes, row_bytes, True, 1.0)
    footprint = n * n * ELEM
    return Trace(_spec("floyd", footprint), base_addr, tuple(out.entries))


#: Kernel registry keyed by the paper's GPU workload names.
GPU_KERNELS: Dict[str, Callable[..., Trace]] = {
    "mm": tiled_gemm,
    "sten": stencil2d,
    "pr": csr_pagerank,
    "syr2k": syr2k_panels,
    "floyd": floyd_warshall,
}


def generate_kernel_trace(name: str, base_addr: int = 0, **kwargs) -> Trace:
    """Walk the GPU kernel behind one of the paper's workloads."""
    try:
        kernel = GPU_KERNELS[name]
    except KeyError:
        raise ConfigError(
            f"unknown GPU kernel {name!r}; known: {sorted(GPU_KERNELS)}"
        ) from None
    return kernel(base_addr=base_addr, **kwargs)
