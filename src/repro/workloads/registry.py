"""The paper's workload suite (Table 4) as calibrated synthetic specs.

Gap parameters were tuned so that each workload's request-level
intensity lands in its Table-4 traffic class (s / m / l) and its
stream-chunk distribution matches its Fig.-4 access-pattern class
(ff / f / c / cc / d).  ``yt`` (Yolo-Tiny, NPU) and ``sc``
(Stream-Clustering, CPU) exist only for the Sec.-5.5 real-world
pipelines (Table 6).
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.common.errors import ConfigError
from repro.common.types import DeviceKind
from repro.workloads.spec import WorkloadSpec

_MB = 1024 * 1024

_SPECS: Tuple[WorkloadSpec, ...] = (
    # ----------------------------------------------------------------- CPU
    WorkloadSpec(
        name="bw", kind=DeviceKind.CPU, footprint_bytes=16 * _MB,
        class_mix={64: 0.94, 512: 0.06}, write_fraction=0.30,
        gap_fine=38.0, gap_burst=4.0, gap_between_bursts=120.0,
        pattern_label="ff", traffic_label="s",
    ),
    WorkloadSpec(
        name="gcc", kind=DeviceKind.CPU, footprint_bytes=24 * _MB,
        class_mix={64: 0.92, 512: 0.08}, write_fraction=0.35,
        gap_fine=42.0, gap_burst=4.0, gap_between_bursts=150.0,
        pattern_label="ff", traffic_label="s",
    ),
    WorkloadSpec(
        name="ray", kind=DeviceKind.CPU, footprint_bytes=16 * _MB,
        class_mix={64: 0.96, 512: 0.04}, write_fraction=0.25,
        gap_fine=45.0, gap_burst=4.0, gap_between_bursts=160.0,
        pattern_label="ff", traffic_label="s",
    ),
    WorkloadSpec(
        name="mcf", kind=DeviceKind.CPU, footprint_bytes=48 * _MB,
        class_mix={64: 0.90, 512: 0.10}, write_fraction=0.30,
        gap_fine=11.0, gap_burst=3.0, gap_between_bursts=90.0,
        pattern_label="ff", traffic_label="m",
    ),
    WorkloadSpec(
        name="xal", kind=DeviceKind.CPU, footprint_bytes=24 * _MB,
        class_mix={64: 0.70, 512: 0.22, 4096: 0.08}, write_fraction=0.35,
        gap_fine=14.0, gap_burst=3.0, gap_between_bursts=200.0,
        pattern_label="f", traffic_label="m",
    ),
    WorkloadSpec(
        name="sc", kind=DeviceKind.CPU, footprint_bytes=16 * _MB,
        class_mix={64: 0.68, 512: 0.22, 4096: 0.10}, write_fraction=0.40,
        gap_fine=12.0, gap_burst=3.0, gap_between_bursts=220.0,
        pattern_label="f", traffic_label="m",
    ),
    # ----------------------------------------------------------------- GPU
    WorkloadSpec(
        name="syr2k", kind=DeviceKind.GPU, footprint_bytes=32 * _MB,
        class_mix={64: 0.86, 512: 0.14}, write_fraction=0.30,
        gap_fine=9.0, gap_burst=2.0, gap_between_bursts=100.0,
        pattern_label="ff", traffic_label="m",
    ),
    WorkloadSpec(
        name="pr", kind=DeviceKind.GPU, footprint_bytes=48 * _MB,
        class_mix={64: 0.62, 512: 0.26, 4096: 0.12}, write_fraction=0.25,
        gap_fine=10.0, gap_burst=2.0, gap_between_bursts=150.0,
        pattern_label="f", traffic_label="m",
    ),
    WorkloadSpec(
        name="floyd", kind=DeviceKind.GPU, footprint_bytes=32 * _MB,
        class_mix={64: 0.28, 512: 0.22, 4096: 0.28, 32768: 0.22},
        write_fraction=0.30,
        gap_fine=25.0, gap_burst=10.0, gap_between_bursts=8000.0,
        region_reuse=0.75, pool_size=8,
        mixed_chunk_p=0.04, scatter_p=0.5,
        pattern_label="d", traffic_label="s",
    ),
    WorkloadSpec(
        name="mm", kind=DeviceKind.GPU, footprint_bytes=32 * _MB,
        class_mix={64: 0.06, 4096: 0.19, 32768: 0.75}, write_fraction=0.35,
        gap_fine=15.0, gap_burst=2.0, gap_between_bursts=1100.0,
        region_reuse=0.75, pool_size=8,
        mixed_chunk_p=0.04, scatter_p=0.5,
        pattern_label="cc", traffic_label="m",
    ),
    WorkloadSpec(
        name="sten", kind=DeviceKind.GPU, footprint_bytes=32 * _MB,
        class_mix={64: 0.08, 4096: 0.50, 32768: 0.42}, write_fraction=0.40,
        gap_fine=8.0, gap_burst=1.2, gap_between_bursts=250.0,
        region_reuse=0.75, pool_size=8,
        mixed_chunk_p=0.04, scatter_p=0.5,
        pattern_label="c", traffic_label="l",
    ),
    # ----------------------------------------------------------------- NPU
    WorkloadSpec(
        name="ncf", kind=DeviceKind.NPU, footprint_bytes=16 * _MB,
        class_mix={64: 0.18, 4096: 0.44, 32768: 0.38}, write_fraction=0.30,
        gap_fine=30.0, gap_burst=1.0, gap_between_bursts=2800.0,
        region_reuse=0.8, pool_size=6,
        mixed_chunk_p=0.04, scatter_p=0.5,
        pattern_label="c", traffic_label="s",
    ),
    WorkloadSpec(
        name="dlrm", kind=DeviceKind.NPU, footprint_bytes=24 * _MB,
        class_mix={64: 0.22, 4096: 0.42, 32768: 0.36}, write_fraction=0.30,
        gap_fine=28.0, gap_burst=1.0, gap_between_bursts=2600.0,
        region_reuse=0.8, pool_size=6,
        mixed_chunk_p=0.04, scatter_p=0.5,
        pattern_label="c", traffic_label="s",
    ),
    WorkloadSpec(
        name="alex", kind=DeviceKind.NPU, footprint_bytes=24 * _MB,
        class_mix={64: 0.08, 4096: 0.16, 32768: 0.76}, write_fraction=0.35,
        gap_fine=20.0, gap_burst=0.8, gap_between_bursts=800.0,
        region_reuse=0.8, pool_size=6,
        mixed_chunk_p=0.04, scatter_p=0.5,
        pattern_label="cc", traffic_label="m",
    ),
    WorkloadSpec(
        name="sfrnn", kind=DeviceKind.NPU, footprint_bytes=16 * _MB,
        class_mix={64: 0.12, 4096: 0.42, 32768: 0.46}, write_fraction=0.45,
        gap_fine=10.0, gap_burst=0.7, gap_between_bursts=350.0,
        region_reuse=0.8, pool_size=6,
        mixed_chunk_p=0.04, scatter_p=0.5,
        pattern_label="c", traffic_label="l",
    ),
    WorkloadSpec(
        name="yt", kind=DeviceKind.NPU, footprint_bytes=16 * _MB,
        class_mix={64: 0.15, 4096: 0.50, 32768: 0.35}, write_fraction=0.40,
        gap_fine=15.0, gap_burst=0.8, gap_between_bursts=1200.0,
        region_reuse=0.8, pool_size=6,
        mixed_chunk_p=0.04, scatter_p=0.5,
        pattern_label="c", traffic_label="m",
    ),
)

WORKLOADS: Dict[str, WorkloadSpec] = {spec.name: spec for spec in _SPECS}

#: The paper's evaluated suite (Table 4), excluding the Sec.-5.5 extras.
CPU_WORKLOADS = ("bw", "gcc", "mcf", "xal", "ray")
GPU_WORKLOADS = ("floyd", "mm", "pr", "sten", "syr2k")
NPU_WORKLOADS = ("ncf", "dlrm", "alex", "sfrnn")


def get_workload(name: str) -> WorkloadSpec:
    """Look up a workload spec by its paper name."""
    try:
        return WORKLOADS[name]
    except KeyError:
        raise ConfigError(
            f"unknown workload {name!r}; known: {sorted(WORKLOADS)}"
        ) from None


def workloads_for(kind: DeviceKind) -> List[WorkloadSpec]:
    """All evaluated workloads of one device class."""
    names = {
        DeviceKind.CPU: CPU_WORKLOADS,
        DeviceKind.GPU: GPU_WORKLOADS,
        DeviceKind.NPU: NPU_WORKLOADS,
    }[kind]
    return [WORKLOADS[name] for name in names]
