"""Synthetic LLC-miss trace generation from a :class:`WorkloadSpec`.

A trace is a list of ``(gap, addr, is_write)`` tuples: ``gap`` is the
device's compute time (reference cycles) since the previous request.
Traces are generated to cover a target *duration* of compute time so
that the devices of a scenario stay concurrently active -- the paper's
contention effects depend on overlap, not on equal request counts.

Bursts are the unit of generation: a fine "burst" is a short run of
scattered lines inside one chunk; a coarse burst streams every line of
an aligned 512B/4KB/32KB region back-to-back (all lines inside the 16K
cycle detection window, making it a *stream chunk* in the paper's
terms).  Regions are drawn from a small reuse pool, so streams revisit
the same chunks -- which is exactly when detected granularity pays off.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.common.address import align_down
from repro.common.constants import CACHELINE_BYTES, CHUNK_BYTES, GRANULARITIES
from repro.common.rng import rng_for
from repro.workloads.spec import WorkloadSpec

TraceEntry = Tuple[float, int, bool]


@dataclass(frozen=True)
class Trace:
    """One device's generated request stream."""

    spec: WorkloadSpec
    base_addr: int
    entries: Tuple[TraceEntry, ...]

    def __len__(self) -> int:
        return len(self.entries)

    @property
    def compute_cycles(self) -> float:
        return sum(gap for gap, _, _ in self.entries)

    @property
    def max_addr(self) -> int:
        if not self.entries:
            return self.base_addr
        return max(addr for _, addr, _ in self.entries) + CACHELINE_BYTES


class _RegionPool:
    """Recently used regions with sticky roles, for re-streaming.

    Each region is either an *input* (read-streamed, e.g. weights) or
    an *output* (write-streamed); the role is fixed at first use, as it
    is for real tensors and tiles.  Keeping roles sticky is what makes
    the read-only MAC optimization of [56] (and the paper's Table 2)
    effective: input regions are never written, so their chunks stay
    read-only.
    """

    def __init__(self, size: int) -> None:
        self.size = size
        self.regions: List[Tuple[int, bool]] = []  # (base, is_write)

    def pick_or_new(
        self,
        rng: random.Random,
        new_region: int,
        reuse_p: float,
        write_fraction: float,
    ) -> Tuple[int, bool]:
        if self.regions and rng.random() < reuse_p:
            return rng.choice(self.regions)
        entry = (new_region, rng.random() < write_fraction)
        self.remember(entry)
        return entry

    def remember(self, entry: Tuple[int, bool]) -> None:
        if entry in self.regions:
            return
        self.regions.append(entry)
        if len(self.regions) > self.size:
            self.regions.pop(0)


def generate_trace(
    spec: WorkloadSpec,
    duration_cycles: float,
    base_addr: int = 0,
    seed: int = 0,
    max_requests: Optional[int] = None,
) -> Trace:
    """Generate a trace covering ``duration_cycles`` of device compute."""
    rng = rng_for(f"trace:{spec.name}:{base_addr}", seed)
    weights = spec.burst_weights()
    classes = sorted(weights)
    cum: List[float] = []
    acc = 0.0
    for granularity in classes:
        acc += weights[granularity]
        cum.append(acc)
    total_weight = acc

    pools = {granularity: _RegionPool(spec.pool_size) for granularity in classes}
    chunks_in_footprint = max(1, spec.footprint_bytes // CHUNK_BYTES)

    entries: List[TraceEntry] = []
    elapsed = 0.0
    fine = GRANULARITIES[0]

    def emit(gap: float, addr: int, is_write: bool) -> None:
        nonlocal elapsed
        entries.append((gap, addr, is_write))
        elapsed += gap

    while elapsed < duration_cycles and (
        max_requests is None or len(entries) < max_requests
    ):
        draw = rng.random() * total_weight
        granularity = classes[-1]
        for idx, threshold in enumerate(cum):
            if draw <= threshold:
                granularity = classes[idx]
                break

        chunk = base_addr + rng.randrange(chunks_in_footprint) * CHUNK_BYTES

        if granularity == fine:
            # A short sequential run within one (possibly reused) chunk:
            # real miss streams stride, so adjacent lines share counter
            # and MAC lines even at fine granularity.  Sometimes the run
            # lands inside a chunk the workload also streams (shared
            # data structures -> the mixed patterns of Sec. 3.3); such
            # runs inherit the region's role so inputs stay read-only.
            coarse_regions = [
                entry
                for g, pool in pools.items()
                if g != fine
                for entry in pool.regions
            ]
            if coarse_regions and rng.random() < spec.mixed_chunk_p:
                region, is_write = rng.choice(coarse_regions)
                chunk = align_down(region, CHUNK_BYTES)
            else:
                chunk, is_write = pools[fine].pick_or_new(
                    rng, chunk, spec.region_reuse, spec.write_fraction
                )
            if rng.random() < spec.scatter_p:
                run = 1  # isolated pointer-chase miss
            else:
                run = rng.randint(2, spec.fine_run_max)
            lines_per_chunk = CHUNK_BYTES // CACHELINE_BYTES
            start_line = rng.randrange(lines_per_chunk)
            for step in range(run):
                line = (start_line + step) % lines_per_chunk
                gap = rng.expovariate(1.0 / spec.gap_fine)
                emit(gap, chunk + line * CACHELINE_BYTES, is_write)
            continue

        # Coarse stream burst over one aligned region.
        if granularity == CHUNK_BYTES:
            candidate = chunk
        else:
            regions_per_chunk = CHUNK_BYTES // granularity
            candidate = chunk + rng.randrange(regions_per_chunk) * granularity
        region, is_write = pools[granularity].pick_or_new(
            rng, candidate, spec.region_reuse, spec.write_fraction
        )
        region = align_down(region, granularity)
        burst_bytes = granularity
        if rng.random() < spec.partial_burst_p:
            # Boundary tile / early termination: the burst stops in the
            # second half of the region, leaving it partially covered
            # (a misprediction source for coarse-granularity schemes).
            lines = granularity // CACHELINE_BYTES
            burst_bytes = rng.randrange(lines // 2, lines) * CACHELINE_BYTES
            burst_bytes = max(CACHELINE_BYTES, burst_bytes)
        first_gap = rng.expovariate(1.0 / spec.gap_between_bursts)
        for index, off in enumerate(range(0, burst_bytes, CACHELINE_BYTES)):
            gap = first_gap if index == 0 else rng.expovariate(
                1.0 / spec.gap_burst
            )
            emit(gap, region + off, is_write)

    return Trace(spec=spec, base_addr=base_addr, entries=tuple(entries))
