"""Phased traces: workloads that change behaviour mid-run.

The paper reports a 26.5% misprediction rate because real applications
move between phases (im2col here, dense GEMM there); our stationary
synthetics mispredict far less.  A *phased* trace alternates between
two workload characters over the same address range, forcing the
detector to keep re-classifying -- the stress test for lazy switching
and the misprediction handler.
"""

from __future__ import annotations

from dataclasses import replace
from typing import List, Sequence

from repro.common.errors import ConfigError
from repro.workloads.generator import Trace, TraceEntry, generate_trace
from repro.workloads.spec import WorkloadSpec


def generate_phased_trace(
    specs: Sequence[WorkloadSpec],
    phase_cycles: float,
    phases: int,
    base_addr: int = 0,
    seed: int = 0,
) -> Trace:
    """Alternate between workload characters over one address range.

    Every phase runs ``specs[phase % len(specs)]`` for ``phase_cycles``
    of compute over the *same* footprint (the maximum of the specs'),
    so regions learned coarse in one phase get hit with the next
    phase's pattern -- granularity switching at paper-like rates.
    """
    if not specs:
        raise ConfigError("need at least one spec")
    if phase_cycles <= 0 or phases <= 0:
        raise ConfigError("phase_cycles and phases must be positive")

    footprint = max(spec.footprint_bytes for spec in specs)
    entries: List[TraceEntry] = []
    for phase in range(phases):
        spec = replace(
            specs[phase % len(specs)],
            name=f"{specs[phase % len(specs)].name}@p{phase}",
            footprint_bytes=footprint,
        )
        piece = generate_trace(
            spec, phase_cycles, base_addr=base_addr, seed=seed + phase
        )
        entries.extend(piece.entries)

    label = "+".join(dict.fromkeys(spec.name for spec in specs))
    merged_spec = replace(
        specs[0],
        name=f"phased({label})",
        footprint_bytes=footprint,
        pattern_label="phased",
    )
    return Trace(spec=merged_spec, base_addr=base_addr, entries=tuple(entries))
