"""Timing-layer memory-protection schemes (paper Table 5)."""

from repro.schemes.adaptive import AdaptiveMacScheme
from repro.schemes.base import ProtectionScheme, RegionBuffer, SchemeStats
from repro.schemes.common_counters import CommonCountersScheme
from repro.schemes.conventional import ConventionalScheme, MacOnlyScheme
from repro.schemes.multigran import MultiGranularScheme
from repro.schemes.registry import SCHEME_NAMES, build_scheme
from repro.schemes.static import StaticGranularScheme
from repro.schemes.unsecure import UnsecureScheme

__all__ = [
    "AdaptiveMacScheme",
    "ProtectionScheme",
    "RegionBuffer",
    "SchemeStats",
    "CommonCountersScheme",
    "ConventionalScheme",
    "MacOnlyScheme",
    "MultiGranularScheme",
    "SCHEME_NAMES",
    "build_scheme",
    "StaticGranularScheme",
    "UnsecureScheme",
]
