"""Conventional fixed-64B counter + MAC protection (the paper's baseline).

Every 64B LLC miss fetches its fine counter (walking the tree to the
first trusted node), its fine MAC, and the data line.  With an optional
:class:`~repro.subtree.bmf.SubtreeRootCache` and a footprint-sized tree
this same class models the ``BMF&Unused`` comparison scheme.
"""

from __future__ import annotations

from typing import Optional

from repro.common.config import SoCConfig
from repro.common.constants import CACHELINE_BYTES, GRANULARITIES
from repro.common.types import MemoryRequest, MetadataKind
from repro.mem.channel import MemoryChannel
from repro.schemes.base import ProtectionScheme
from repro.subtree.bmf import SubtreeRootCache


class ConventionalScheme(ProtectionScheme):
    """Fixed 64B-granular counters and MACs."""

    name = "conventional"

    def __init__(
        self,
        config: SoCConfig,
        region_bytes: Optional[int] = None,
        subtree: Optional[SubtreeRootCache] = None,
    ) -> None:
        super().__init__(config, region_bytes)
        self.subtree = subtree
        if subtree is not None:
            self.name = "bmf_unused"

    def _trusted_stop(self, level: int, node: int) -> bool:
        return self.subtree is not None and self.subtree.trusted(level, node)

    def _process(
        self, req: MemoryRequest, cycle: float, channel: MemoryChannel
    ) -> float:
        self.stats.granularity_hist.add(GRANULARITIES[0])
        line_index = req.addr // CACHELINE_BYTES
        mac_line = self.geometry.fine_mac_line_addr(line_index)

        if self.subtree is not None:
            self.subtree.admit(
                self.geometry.node_of_addr(req.addr, self.subtree.level)
            )

        if req.is_write:
            self._transfer(channel, cycle, MetadataKind.DATA)
            self._counter_write_walk(
                req.addr, 0, cycle, channel, self._trusted_stop
            )
            self._mac_access(mac_line, True, cycle, channel)
            return cycle

        data_ready = self._fetch_data_fine(cycle, channel)
        ctr_ready = self._counter_read_walk(
            req.addr, 0, cycle, channel, self._trusted_stop
        )
        mac_ready = self._mac_access(mac_line, False, cycle, channel)
        return self._crypto_done(data_ready, ctr_ready, mac_ready)


class MacOnlyScheme(ConventionalScheme):
    """Fine MACs without counters/tree: the ``+Cost (MAC)`` point of Fig. 5.

    Decryption is modeled as free (no counters), isolating the MAC
    share of the conventional overhead breakdown.
    """

    name = "mac_only"

    def _process(
        self, req: MemoryRequest, cycle: float, channel: MemoryChannel
    ) -> float:
        self.stats.granularity_hist.add(GRANULARITIES[0])
        line_index = req.addr // CACHELINE_BYTES
        mac_line = self.geometry.fine_mac_line_addr(line_index)

        if req.is_write:
            self._transfer(channel, cycle, MetadataKind.DATA)
            self._mac_access(mac_line, True, cycle, channel)
            return cycle

        data_ready = self._fetch_data_fine(cycle, channel)
        mac_ready = self._mac_access(mac_line, False, cycle, channel)
        return max(data_ready, mac_ready) + self._engine.mac_latency
