"""No memory protection: the normalization baseline of every figure."""

from __future__ import annotations

from repro.common.types import MemoryRequest, MetadataKind
from repro.mem.channel import MemoryChannel
from repro.schemes.base import ProtectionScheme


class UnsecureScheme(ProtectionScheme):
    """Plain DRAM access: one 64B transaction per request, no metadata."""

    name = "unsecure"

    def _process(
        self, req: MemoryRequest, cycle: float, channel: MemoryChannel
    ) -> float:
        if req.is_write:
            self._transfer(channel, cycle, MetadataKind.DATA)
            return cycle
        return self._transfer(channel, cycle, MetadataKind.DATA)
