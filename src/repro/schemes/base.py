"""Timing-layer protection-scheme framework.

A *scheme* models how one memory-protection design turns each LLC-miss
request into off-chip transactions (data + security metadata) and a
completion time.  Schemes share:

* the metadata / MAC / granularity-table caches,
* the serialized counter-tree walk (reads stop at the first trusted
  node -- a metadata-cache hit, a cached subtree root, or the on-chip
  root; writes update every level to the root, Fig. 14),
* the *region buffer*, which models coarse-granularity data movement:
  a coarse region is fetched or written as one burst, so later lines
  of the same open region cost nothing (Fig. 8: "the data as much as
  granularity is fetched"), while sparse access to a coarse region
  over-fetches -- the misprediction cost the detector exists to avoid.

Concrete schemes (conventional, ours, prior work, ablations) override
granularity resolution and the metadata addressing hooks.
"""

from __future__ import annotations

import abc
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.common.config import SoCConfig
from repro.common.constants import CACHELINE_BYTES, CHUNK_BYTES, GRANULARITIES
from repro.common.stats import CounterStats, Histogram
from repro.common.types import MemoryRequest, MetadataKind, TrafficBreakdown
from repro.core.switching import SwitchAccounting
from repro.mem.cache import SetAssociativeCache
from repro.mem.channel import MemoryChannel
from repro.obs import EventType, MetricsRegistry, ObsContext
from repro.tree.geometry import TreeGeometry


@dataclass
class SchemeStats:
    """Everything a run records about one scheme instance.

    The fields stay plain attributes (the hot path mutates them with
    no indirection); :meth:`register_into` additionally surfaces every
    one of them in a :class:`~repro.obs.MetricsRegistry` under
    hierarchical names, so run results expose one uniform snapshot.
    """

    traffic: TrafficBreakdown = field(default_factory=TrafficBreakdown)
    requests: int = 0
    reads: int = 0
    writes: int = 0
    granularity_hist: Histogram = field(default_factory=Histogram)
    switching: SwitchAccounting = field(default_factory=SwitchAccounting)
    serialized_level_fetches: int = 0
    region_overfetch_lines: int = 0
    per_device: Dict[int, CounterStats] = field(default_factory=dict)
    _registry: Optional[MetricsRegistry] = field(
        default=None, repr=False, compare=False
    )

    def device(self, index: int) -> CounterStats:
        """Integrity-event counters of one processing unit."""
        group = self.per_device.get(index)
        if group is None:
            group = CounterStats()
            self.per_device[index] = group
            if self._registry is not None:
                self._registry.bind(f"device.{index}", group.as_dict)
        return group

    def security_cache_misses(self, scheme: "ProtectionScheme") -> int:
        return scheme.metadata_cache.misses + scheme.mac_cache.misses

    def register_into(self, registry: MetricsRegistry) -> None:
        """Bind every statistic under its hierarchical metric name."""
        self._registry = registry
        registry.bind("scheme.requests", lambda: self.requests)
        registry.bind("scheme.reads", lambda: self.reads)
        registry.bind("scheme.writes", lambda: self.writes)
        registry.bind(
            "scheme.granularity_hist",
            lambda: dict(self.granularity_hist.buckets),
        )
        registry.bind(
            "tree.walk.serialized_fetches",
            lambda: self.serialized_level_fetches,
        )
        registry.bind(
            "region.overfetch_lines", lambda: self.region_overfetch_lines
        )
        for kind in MetadataKind:
            registry.bind(
                f"traffic.{kind.value}_bytes",
                lambda kind=kind: self.traffic.bytes_by_kind[kind],
            )
        registry.bind("traffic.total_bytes", lambda: self.traffic.total_bytes)
        registry.bind(
            "traffic.metadata_bytes", lambda: self.traffic.metadata_bytes
        )
        registry.bind(
            "switch.total", lambda: self.switching.total_switches
        )
        registry.bind(
            "switch.misprediction_rate",
            lambda: self.switching.misprediction_rate,
        )
        registry.bind(
            "switch.by_category",
            lambda: dict(self.switching.events_by_category),
        )
        for index, group in self.per_device.items():
            registry.bind(f"device.{index}", group.as_dict)


class RegionBuffer:
    """Tracks per-line coverage of *open* coarse protection regions.

    A coarse region's merged MAC (and shared counter) cover the whole
    region, so verifying or resealing it needs every line on-chip.
    Streamed regions get full coverage for free -- the trace itself
    touches every line.  A region evicted with *partial* coverage owes
    the lines the engine had to fetch anyway (to verify a merged MAC
    on a sparse read, or to read-modify-write it on a partial write);
    that deferred penalty is the over-fetch cost of mispredicted
    coarseness.  Lines are charged one request at a time, so streams
    produce exactly the unsecured scheme's data traffic and there is
    no artificial head-of-line blocking from batched prefetch.
    """

    #: Default capacity in 64B lines (512KB / 16 regions).  The buffer
    #: never elides data transfers (each request pays its own line); it
    #: only times when coverage debt settles, so the capacity just needs
    #: to hold the bursts that are genuinely concurrent.
    DEFAULT_CAPACITY_LINES = 8192

    #: Maximum concurrently open *written* regions.  A written region is
    #: write-combining state that must drain (reseal its merged MAC), so
    #: unlike read coverage it cannot accumulate indefinitely -- sparse
    #: writes scattered over many regions pay their read-modify-write
    #: per drain, not once per run.
    MAX_DIRTY_REGIONS = 8

    def __init__(
        self,
        capacity_lines: int = DEFAULT_CAPACITY_LINES,
        max_dirty_regions: int = MAX_DIRTY_REGIONS,
    ) -> None:
        self.capacity_lines = capacity_lines
        self.max_dirty_regions = max_dirty_regions
        self._held_lines = 0
        self._dirty_count = 0
        self._regions: "OrderedDict[int, Dict]" = OrderedDict()

    def touch(
        self,
        region_base: int,
        granularity: int,
        line_offset: int,
        read_only: bool,
        is_write: bool,
    ) -> Tuple[bool, List[Dict]]:
        """Record one line access.

        ``read_only`` is the *chunk-level* flag (eligibility for the
        retained-fine-MAC fallback); ``is_write`` marks this *region*
        as holding write-combining state that must eventually drain.
        Returns (was_open, victims): regions evicted to make room,
        whose coverage debt the caller settles.
        """
        state = self._regions.get(region_base)
        victims: List[Dict] = []
        if state is None:
            victims = self._insert(
                region_base,
                {
                    "base": region_base,
                    "granularity": granularity,
                    "covered": 0,
                    "read_only": read_only,
                    "dirty": False,
                },
            )
            state = self._regions[region_base]
            was_open = False
        else:
            self._regions.move_to_end(region_base)
            was_open = True
        if not read_only:
            state["read_only"] = False
        if is_write and not state["dirty"]:
            state["dirty"] = True
            self._dirty_count += 1
            victims.extend(self._drain_dirty(keep=region_base))
        state["covered"] |= 1 << line_offset
        return was_open, victims

    def _insert(self, key: int, state: Dict) -> List[Dict]:
        lines = state["granularity"] // CACHELINE_BYTES
        victims: List[Dict] = []
        while self._regions and self._held_lines + lines > self.capacity_lines:
            victims.append(self._evict_lru())
        self._regions[key] = state
        self._held_lines += lines
        return victims

    def _evict_lru(self) -> Dict:
        _, victim = self._regions.popitem(last=False)
        self._held_lines -= victim["granularity"] // CACHELINE_BYTES
        if victim["dirty"]:
            self._dirty_count -= 1
        return victim

    def _drain_dirty(self, keep: int) -> List[Dict]:
        """Evict least-recent written regions beyond the dirty cap."""
        victims: List[Dict] = []
        while self._dirty_count > self.max_dirty_regions:
            for key, state in self._regions.items():
                if state["dirty"] and key != keep:
                    del self._regions[key]
                    self._held_lines -= state["granularity"] // CACHELINE_BYTES
                    self._dirty_count -= 1
                    victims.append(state)
                    break
            else:
                break  # only the protected region is dirty
        return victims

    def flush(self) -> List[Dict]:
        """Drain the buffer; return every region for debt settlement."""
        victims = list(self._regions.values())
        self._regions.clear()
        self._held_lines = 0
        self._dirty_count = 0
        return victims

    @staticmethod
    def eviction_penalty(state: Dict) -> Tuple[int, int]:
        """(data lines, MAC lines) owed by a partially covered region.

        A written region's merged MAC can only be resealed/verified
        with the whole region on-chip, so uncovered lines are fetched
        (read-modify-write).  A *read-only* region keeps its constant
        fine MACs in unprotected memory (paper Table 2, after [56]):
        the engine falls back to verifying the covered lines against
        fine MACs instead -- one MAC line per 8 covered lines.
        """
        lines = state["granularity"] // CACHELINE_BYTES
        covered = bin(state["covered"]).count("1")
        missing = max(0, lines - covered)
        if missing == 0:
            return 0, 0
        if state["read_only"]:
            return 0, -(-covered // 8)
        return missing, 0


class ProtectionScheme(abc.ABC):
    """Base class of all timing-layer schemes."""

    #: Short identifier used in experiment tables.
    name: str = "base"

    #: Whether the scheme keeps constant fine MACs for read-only data in
    #: unprotected memory (the [56] optimization the paper adopts).  Only
    #: such schemes can verify a sparse read of a coarse read-only region
    #: without fetching the whole region.
    retains_fine_macs: bool = False

    def __init__(self, config: SoCConfig, region_bytes: Optional[int] = None) -> None:
        self.config = config
        self.geometry = TreeGeometry.build(
            region_bytes or config.memory.protected_bytes
        )
        engine = config.engine
        self.metadata_cache = SetAssociativeCache(engine.metadata_cache)
        if engine.unified_metadata_cache:
            # One unified structure serves counters, tree nodes and
            # MACs (alternative design noted in paper Sec. 2.2).
            self.mac_cache = self.metadata_cache
        else:
            self.mac_cache = SetAssociativeCache(engine.mac_cache)
        self.table_cache = SetAssociativeCache(engine.table_cache)
        self.region_buffer = RegionBuffer()
        self.stats = SchemeStats()
        self._written_chunks: set = set()
        self._engine = engine
        self._active_device: Optional[int] = None
        self.obs = ObsContext.disabled()
        self.tracer = self.obs.tracer
        self._register_obs()

    def attach_obs(self, obs: Optional[ObsContext]) -> None:
        """Adopt an observability context (registry + tracer).

        Called after construction (by the scheme factory) so concrete
        scheme ``__init__`` signatures stay untouched.
        """
        if obs is None:
            return
        self.obs = obs
        self.tracer = obs.tracer
        self._register_obs()

    def _register_obs(self) -> None:
        """Surface stats and cache counters in the metrics registry."""
        registry = self.obs.registry
        self.stats.register_into(registry)
        self.metadata_cache.metrics_into(registry, "engine.cache.metadata")
        if self.mac_cache is not self.metadata_cache:
            self.mac_cache.metrics_into(registry, "engine.cache.mac")
        self.table_cache.metrics_into(registry, "engine.cache.table")
        registry.bind(
            "engine.cache.security_misses",
            lambda: self.stats.security_cache_misses(self),
        )
        if self.tracer:
            # Layout-memo diagnostics are process-global (shared across
            # schemes and engines), so they only enter the snapshot on
            # traced runs -- the fast engine requires tracing off, which
            # keeps scalar/fast metrics payloads byte-identical.
            from repro.core import addressing

            for key in ("hits", "misses", "evictions", "entries", "capacity"):
                registry.bind(
                    f"engine.layout_cache.{key}",
                    lambda key=key: addressing.layout_cache_stats()[key],
                )

    # ------------------------------------------------------------------
    # Main entry point
    # ------------------------------------------------------------------

    def process(
        self, req: MemoryRequest, cycle: float, channel: MemoryChannel
    ) -> float:
        """Run one request through the scheme; return its completion cycle."""
        self.stats.requests += 1
        if req.is_write:
            self.stats.writes += 1
        else:
            self.stats.reads += 1
        self._active_device = req.device
        device = self.stats.device(req.device)
        device.bump("requests")
        device.bump("writes" if req.is_write else "reads")
        return self._process(req, cycle, channel)

    @abc.abstractmethod
    def _process(
        self, req: MemoryRequest, cycle: float, channel: MemoryChannel
    ) -> float:
        """Scheme-specific handling of one request."""

    def reset_stats(self) -> None:
        """Zero all statistics, keeping learned state (end of warmup).

        Cache contents, the granularity table, tracker, subtree roots
        and region coverage all persist -- only the counters restart,
        so a post-warmup measurement sees the steady state.
        """
        self.stats = SchemeStats()
        self.metadata_cache.reset_stats()
        self.mac_cache.reset_stats()
        self.table_cache.reset_stats()
        self._register_obs()
        self.tracer.clear()

    def finish(self, channel: MemoryChannel) -> None:
        """End-of-run cleanup: drain buffers, charge residual penalties."""
        self._settle_evictions(self.region_buffer.flush(), channel.free_at, channel)

    def _settle_evictions(
        self, victims, cycle: float, channel: MemoryChannel
    ) -> None:
        """Pay the deferred over-fetch of partially covered regions."""
        for victim in victims:
            data_lines, mac_lines = RegionBuffer.eviction_penalty(victim)
            if self.tracer:
                self.tracer.emit(
                    EventType.REGION_EVICT,
                    cycle,
                    chunk=victim["base"] // CHUNK_BYTES,
                    granularity=victim["granularity"],
                    overfetch_lines=data_lines,
                    mac_lines=mac_lines,
                )
            if data_lines:
                self.stats.region_overfetch_lines += data_lines
                for _ in range(data_lines):
                    self._transfer(channel, cycle, MetadataKind.DATA)
            for _ in range(mac_lines):
                self._transfer(channel, cycle, MetadataKind.MAC)
            if data_lines:
                # Only *costly* mispredictions (whole-data over-fetch)
                # warrant demotion; the read-only fine-MAC fallback is
                # cheap and should not forfeit coarse-counter benefits.
                self._region_eviction_feedback(victim)

    def _region_eviction_feedback(self, victim: Dict) -> None:
        """Hook: a coarse region left partially covered (misprediction).

        Dynamic schemes override this to demote the region's untouched
        partitions (the paper's misprediction handler); static schemes
        cannot adapt, which is exactly their weakness (Fig. 6).
        """

    # ------------------------------------------------------------------
    # Shared building blocks
    # ------------------------------------------------------------------

    def metadata_windows(self) -> Dict[str, Tuple[int, int]]:
        """Half-open address windows of the scheme's metadata layout.

        Mirror of :meth:`repro.tree.geometry.TreeGeometry.metadata_bounds`
        exposed at the scheme level so harnesses (``repro.check``) and
        trace tooling can classify every address a run touched without
        reaching into the geometry object.
        """
        return {
            name: (start, end)
            for name, (start, end) in self.geometry.metadata_bounds().items()
        }

    def _transfer(
        self,
        channel: MemoryChannel,
        cycle: float,
        kind: MetadataKind,
        addr=None,
    ) -> float:
        """One 64B off-chip transaction; returns its completion cycle."""
        self.stats.traffic.add(kind, CACHELINE_BYTES)
        _, done = channel.submit(cycle, CACHELINE_BYTES, addr=addr)
        return done

    def _cache_fill(
        self,
        cache: SetAssociativeCache,
        addr: int,
        write: bool,
        cycle: float,
        channel: MemoryChannel,
        kind: MetadataKind,
    ) -> Tuple[bool, float]:
        """Access a metadata cache; fetch on miss, charge writebacks.

        Returns (hit, ready_cycle): ready is ``cycle`` on a hit, the
        fetch completion on a miss.
        """
        result = cache.access(addr, write=write)
        ready = cycle
        if result.writeback_addr is not None:
            self._transfer(channel, cycle, kind, addr=result.writeback_addr)
        if not result.hit:
            ready = self._transfer(channel, cycle, kind, addr=addr)
        if self.tracer:
            self.tracer.emit(
                EventType.CACHE_HIT if result.hit else EventType.CACHE_MISS,
                cycle,
                device=self._active_device,
                kind=kind.value,
                addr=addr,
                write=write,
            )
        return result.hit, ready

    def _counter_read_walk(
        self,
        addr: int,
        start_level: int,
        cycle: float,
        channel: MemoryChannel,
        trusted_stop=None,
    ) -> float:
        """Verification walk from ``start_level`` up to a trusted node.

        The walk stops at the first metadata-cache hit, at a caller-
        supplied trusted node (subtree root caches), or at the on-chip
        root.  Node addresses are all computable up front, so missing
        levels are fetched in parallel, but the verification itself is
        a *sequence* of hash comparisons from the counter to the
        trusted node (paper Sec. 2.2) -- each level walked adds one
        pipelined MAC-check latency.  Tree height (and hence counter
        promotion, Fig. 10) is therefore a first-order latency effect
        without every miss paying a full DRAM round trip.  Returns the
        cycle at which the leaf counter is trusted.
        """
        geometry = self.geometry
        # The walk is per-request; index the precomputed level tables
        # directly instead of re-validating levels through the public
        # accessors (nodes derived from an in-region address are in
        # range by construction).
        level_bases = geometry._level_base_addrs
        arity = geometry.arity
        ready = cycle
        levels_walked = 0
        node = addr // geometry._level_spans[start_level]
        for level in range(start_level, geometry.root_level):
            if trusted_stop is not None and trusted_stop(level, node):
                break
            node_addr = level_bases[level] + node * CACHELINE_BYTES
            hit, done = self._cache_fill(
                self.metadata_cache, node_addr, False, cycle, channel,
                MetadataKind.COUNTER,
            )
            levels_walked += 1
            if hit:
                break
            ready = max(ready, done)
            self.stats.serialized_level_fetches += 1
            node //= arity
        if self._active_device is not None and levels_walked:
            self.stats.device(self._active_device).bump(
                "tree_levels_verified", levels_walked
            )
        if self.tracer:
            self.tracer.emit(
                EventType.TREE_WALK,
                cycle,
                device=self._active_device,
                chunk=addr // CHUNK_BYTES,
                levels=levels_walked,
                start_level=start_level,
            )
        return ready + levels_walked * self._engine.mac_latency

    def _counter_write_walk(
        self,
        addr: int,
        start_level: int,
        cycle: float,
        channel: MemoryChannel,
        trusted_stop=None,
    ) -> None:
        """Update walk: every level to the root is touched dirty (Fig. 14).

        Counter updates are posted (they do not block the device), so
        only bandwidth and cache state are charged, not latency.
        """
        geometry = self.geometry
        level_bases = geometry._level_base_addrs
        arity = geometry.arity
        node = addr // geometry._level_spans[start_level]
        for level in range(start_level, geometry.root_level):
            if trusted_stop is not None and trusted_stop(level, node):
                return
            node_addr = level_bases[level] + node * CACHELINE_BYTES
            self._cache_fill(
                self.metadata_cache, node_addr, True, cycle, channel,
                MetadataKind.COUNTER,
            )
            node //= arity

    def _mac_access(
        self, mac_line_addr: int, write: bool, cycle: float, channel: MemoryChannel
    ) -> float:
        """Access one MAC line through the MAC cache."""
        if self._active_device is not None:
            self.stats.device(self._active_device).bump("mac_verifications")
        _, ready = self._cache_fill(
            self.mac_cache, mac_line_addr, write, cycle, channel, MetadataKind.MAC
        )
        return ready

    def _table_access(
        self, line_addr: int, write: bool, cycle: float, channel: MemoryChannel
    ) -> float:
        """Access one granularity-table line through its cache."""
        _, ready = self._cache_fill(
            self.table_cache, line_addr, write, cycle, channel,
            MetadataKind.GRAN_TABLE,
        )
        return ready

    # -- data movement ---------------------------------------------------

    def _fetch_data_fine(
        self, cycle: float, channel: MemoryChannel, addr=None
    ) -> float:
        return self._transfer(channel, cycle, MetadataKind.DATA, addr=addr)

    def _fetch_data_region(
        self,
        req: MemoryRequest,
        granularity: int,
        cycle: float,
        channel: MemoryChannel,
    ) -> float:
        """Move data for an access at ``granularity`` via the region buffer.

        Reads fetch the whole region on first touch (requested line
        first, so the critical path is one transaction); writes stream
        out line by line.  Returns the data-ready cycle for reads and
        the issue cycle for writes.
        """
        if granularity == GRANULARITIES[0]:
            if req.is_write:
                self._transfer(channel, cycle, MetadataKind.DATA, addr=req.addr)
                return cycle
            return self._fetch_data_fine(cycle, channel, addr=req.addr)

        chunk = req.addr // CHUNK_BYTES
        if req.is_write:
            self._written_chunks.add(chunk)
        region_base = (req.addr // granularity) * granularity
        line_offset = (req.addr - region_base) // CACHELINE_BYTES
        _, victims = self.region_buffer.touch(
            region_base, granularity, line_offset,
            read_only=self.retains_fine_macs
            and chunk not in self._written_chunks,
            is_write=req.is_write,
        )
        self._settle_evictions(victims, cycle, channel)
        if req.is_write:
            self._transfer(channel, cycle, MetadataKind.DATA, addr=req.addr)
            return cycle
        return self._fetch_data_fine(cycle, channel, addr=req.addr)

    # -- crypto latency ----------------------------------------------------

    def _crypto_done(
        self, data_ready: float, counter_ready: float, mac_ready: float
    ) -> float:
        """Completion of decrypt + verify given the three arrival times."""
        otp_ready = counter_ready + self._engine.otp_latency
        plaintext = max(data_ready, otp_ready) + self._engine.xor_latency
        return max(plaintext, mac_ready) + self._engine.mac_latency
