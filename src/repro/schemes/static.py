"""Static per-device granularity (the ``Static-device-best`` scheme).

Each processing unit is assigned one fixed granularity for the whole
run; counters are promoted and MACs merged at that granularity with a
*uniform* layout (every chunk fully streamed at the device's size).
There is no tracker, no table and no switching -- but also no way to
adapt, so sparse accesses on a coarsely configured device over-fetch
whole regions every time (the penalty Fig. 6 quantifies for alex and
sfrnn).

``Static-device-best`` is this scheme with per-device granularities
chosen by exhaustive search (see
:func:`repro.sim.runner.best_static_granularities`).
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.common.config import SoCConfig
from repro.common.constants import CACHELINE_BYTES, GRANULARITIES, granularity_level
from repro.common.errors import ConfigError
from repro.common.types import MemoryRequest
from repro.core import addressing, stream_part
from repro.mem.channel import MemoryChannel
from repro.schemes.base import ProtectionScheme


class StaticGranularScheme(ProtectionScheme):
    """Fixed per-device granularity for both counters and MACs."""

    name = "static_device"

    # The scheme runs inside the paper's engine (which keeps constant
    # fine MACs for read-only data); what it lacks is adaptivity, so
    # mispredicted *written* regions pay their over-fetch every time.
    retains_fine_macs = True

    def __init__(
        self,
        config: SoCConfig,
        device_granularities: Dict[int, int],
        region_bytes: Optional[int] = None,
    ) -> None:
        super().__init__(config, region_bytes)
        for device, granularity in device_granularities.items():
            if granularity not in GRANULARITIES:
                raise ConfigError(
                    f"device {device}: unsupported granularity {granularity}"
                )
        self.device_granularities = dict(device_granularities)

    def granularity_for(self, req: MemoryRequest) -> int:
        return self.device_granularities.get(req.device, GRANULARITIES[0])

    def _process(
        self, req: MemoryRequest, cycle: float, channel: MemoryChannel
    ) -> float:
        granularity = self.granularity_for(req)
        self.stats.granularity_hist.add(granularity)

        data_ready = self._fetch_data_region(req, granularity, cycle, channel)

        level = granularity_level(granularity)
        if req.is_write:
            self._counter_write_walk(req.addr, level, cycle, channel)
            ctr_ready = cycle
        else:
            ctr_ready = self._counter_read_walk(req.addr, level, cycle, channel)

        mac_line = self._uniform_mac_line(req.addr, granularity)
        mac_ready = self._mac_access(mac_line, req.is_write, cycle, channel)

        if req.is_write:
            return cycle
        return self._crypto_done(data_ready, ctr_ready, mac_ready)

    def _uniform_mac_line(self, addr: int, granularity: int) -> int:
        """MAC line under a uniform all-stream layout at ``granularity``.

        A chunk whose every partition streams at size ``g`` is encoded
        as a full bitmap capped at ``g`` -- the compaction arithmetic
        then degenerates to ``offset // g``.
        """
        if granularity == GRANULARITIES[0]:
            return self.geometry.fine_mac_line_addr(addr // CACHELINE_BYTES)
        return addressing.mac_line_addr(
            self.geometry, stream_part.FULL_MASK, addr, granularity
        )
