"""Dual-granular counter baseline after Na et al. [35] (``CommonCTR``).

A small on-chip set of *common counters* (16 in the original design)
covers fully streamed 32KB regions: an access to a covered region needs
no counter fetch and no tree walk, because its counter is on-chip and
trusted.  Everything else falls back to the conventional 64B path, and
MACs are always fine-grained (the scheme does not touch MACs).

Costs modeled after the paper's critique (Sec. 2.3): admitting a region
requires a *scan* of its counter lines to prove uniformity, and the
16-entry capacity thrashes in heterogeneous scenarios with many coarse
regions.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Optional

from repro.common.address import chunk_index
from repro.common.config import SoCConfig
from repro.common.constants import (
    CACHELINE_BYTES,
    CHUNK_BYTES,
    COUNTERS_PER_LINE,
    GRANULARITIES,
)
from repro.common.types import MemoryRequest, MetadataKind
from repro.core.detector import detect_stream_partitions
from repro.core.stream_part import FULL_MASK
from repro.core.tracker import AccessTracker
from repro.mem.channel import MemoryChannel
from repro.schemes.base import ProtectionScheme

#: Counter lines holding one chunk's 512 fine counters (scan cost unit).
_SCAN_LINES = CHUNK_BYTES // CACHELINE_BYTES // COUNTERS_PER_LINE  # 64


class CommonCountersScheme(ProtectionScheme):
    """16 on-chip shared counters for streamed 32KB regions, fine MACs."""

    name = "common_ctr"

    def __init__(
        self,
        config: SoCConfig,
        region_bytes: Optional[int] = None,
        shared_counters: int = 16,
    ) -> None:
        super().__init__(config, region_bytes)
        self.shared_capacity = shared_counters
        self._shared: "OrderedDict[int, bool]" = OrderedDict()
        self.tracker = AccessTracker(config.engine.tracker)
        self.shared_hits = 0
        self.scans = 0

    def _process(
        self, req: MemoryRequest, cycle: float, channel: MemoryChannel
    ) -> float:
        # Detection: only fully streamed chunks qualify for a shared
        # counter (the original design's uniform-counter criterion).
        for eviction in self.tracker.observe(req.addr, int(cycle)):
            bits = detect_stream_partitions(eviction.entry.access_bits)
            if bits == FULL_MASK:
                self._admit(eviction.entry.chunk_index, cycle, channel)

        chunk = chunk_index(req.addr)
        shared = chunk in self._shared
        if shared:
            self._shared.move_to_end(chunk)
            self.shared_hits += 1
        self.stats.granularity_hist.add(
            GRANULARITIES[3] if shared else GRANULARITIES[0]
        )

        mac_line = self.geometry.fine_mac_line_addr(req.addr // CACHELINE_BYTES)

        if req.is_write:
            self._transfer(channel, cycle, MetadataKind.DATA)
            if not shared:
                self._counter_write_walk(req.addr, 0, cycle, channel)
            self._mac_access(mac_line, True, cycle, channel)
            return cycle

        data_ready = self._fetch_data_fine(cycle, channel)
        if shared:
            ctr_ready = cycle  # counter is on-chip and trusted
        else:
            ctr_ready = self._counter_read_walk(req.addr, 0, cycle, channel)
        mac_ready = self._mac_access(mac_line, False, cycle, channel)
        return self._crypto_done(data_ready, ctr_ready, mac_ready)

    def _admit(self, chunk: int, cycle: float, channel: MemoryChannel) -> None:
        """Admit a streamed chunk, paying the uniformity-scan traffic."""
        if chunk in self._shared:
            self._shared.move_to_end(chunk)
            return
        if len(self._shared) >= self.shared_capacity:
            self._shared.popitem(last=False)
        self._shared[chunk] = True
        self.scans += 1
        for _ in range(_SCAN_LINES):
            self._transfer(channel, cycle, MetadataKind.COUNTER)
