"""Dual-granular MAC baseline after Yuan et al. [56] (``Adaptive``).

Counters stay fixed at 64B (no tree change); MACs switch dynamically
between 64B and 4KB based on an access tracker.  Both MAC granularities
are *stored simultaneously* (no compaction): coarse MACs live in their
own array, one 8B MAC per 4KB page.  The per-page granularity state is
held on-chip (we charge no table traffic, mirroring the original
design's small on-chip tracker), but the scheme inherits the MAC-side
switching costs -- demoting a written coarse page refetches the page.
"""

from __future__ import annotations

from typing import Optional

from repro.common.config import SoCConfig
from repro.common.constants import (
    CACHELINE_BYTES,
    GRANULARITIES,
    MAC_BYTES,
)
from repro.common.types import MemoryRequest, MetadataKind
from repro.core.detector import merge_detection
from repro.core.gran_table import GranularityTable, SwitchEvent
from repro.core.switching import cost_of
from repro.core.tracker import AccessTracker
from repro.mem.channel import MemoryChannel
from repro.schemes.base import ProtectionScheme

_PAGE = GRANULARITIES[2]  # 4KB coarse MAC unit of [56]


class AdaptiveMacScheme(ProtectionScheme):
    """64B counters + dual-granular (64B / 4KB) MACs."""

    name = "adaptive"
    retains_fine_macs = True

    def __init__(
        self, config: SoCConfig, region_bytes: Optional[int] = None
    ) -> None:
        super().__init__(config, region_bytes)
        # MAC-granularity state: same tracker/table machinery, pinned
        # to dual 64B/4KB.  Held on-chip -> no table traffic charged.
        self.table = GranularityTable(
            table_base=self.geometry.table_base,
            min_coarse=_PAGE,
            max_granularity=_PAGE,
        )
        self.tracker = AccessTracker(config.engine.tracker)
        # Coarse MACs are stored in a dedicated array past the table
        # region: one MAC per 4KB page, no compaction.
        self.coarse_mac_base = (
            self.geometry.table_base + 2 * (self.geometry.region_bytes // 2048)
        )

    def _process(
        self, req: MemoryRequest, cycle: float, channel: MemoryChannel
    ) -> float:
        for eviction in self.tracker.observe(req.addr, int(cycle)):
            chunk = eviction.entry.chunk_index
            bits = merge_detection(
                self.table.entry_by_chunk(chunk).next,
                eviction.entry.access_bits,
                censored=eviction.reason == "capacity",
            )
            self.table.record_detection(chunk, bits)

        mac_granularity, event = self.table.resolve(req.addr, req.is_write)
        self.stats.switching.record_resolution(switched=event is not None)
        self.stats.granularity_hist.add(mac_granularity)
        if event is not None:
            self.stats.switching.record_event(event)
            self._charge_switch(event, cycle, channel)

        # Data moves at the MAC granularity (verifying a page MAC needs
        # the page); counters are still per-64B.
        data_ready = self._fetch_data_region(req, mac_granularity, cycle, channel)

        if req.is_write:
            self._counter_write_walk(req.addr, 0, cycle, channel)
            ctr_ready = cycle
        else:
            ctr_ready = self._counter_read_walk(req.addr, 0, cycle, channel)

        mac_line = self._mac_line_of(req.addr, mac_granularity)
        mac_ready = self._mac_access(mac_line, req.is_write, cycle, channel)

        if req.is_write:
            return cycle
        return self._crypto_done(data_ready, ctr_ready, mac_ready)

    def _mac_line_of(self, addr: int, mac_granularity: int) -> int:
        if mac_granularity == GRANULARITIES[0]:
            return self.geometry.fine_mac_line_addr(addr // CACHELINE_BYTES)
        raw = self.coarse_mac_base + (addr // _PAGE) * MAC_BYTES
        return raw - (raw % CACHELINE_BYTES)

    def _charge_switch(
        self, event: SwitchEvent, cycle: float, channel: MemoryChannel
    ) -> None:
        """MAC-side switching costs only (counters never switch here).

        Scale-down data fetches are owned by the region buffer's
        coverage-debt accounting; only the scale-up MAC folds are
        charged here.
        """
        if not event.scale_up:
            return
        cost = cost_of(event)
        for _ in range(cost.extra_mac_lines + cost.extra_data_lines):
            self._transfer(channel, cycle, MetadataKind.SWITCH)
