"""Scheme factory: build any simulated scheme of Table 5 by name."""

from __future__ import annotations

from typing import Dict, Optional

from repro.common.address import align_up
from repro.common.config import SoCConfig
from repro.common.constants import CHUNK_BYTES, GRANULARITIES
from repro.common.errors import ConfigError
from repro.schemes.adaptive import AdaptiveMacScheme
from repro.schemes.base import ProtectionScheme
from repro.schemes.common_counters import CommonCountersScheme
from repro.schemes.conventional import ConventionalScheme, MacOnlyScheme
from repro.schemes.multigran import MultiGranularScheme
from repro.schemes.static import StaticGranularScheme
from repro.schemes.unsecure import UnsecureScheme
from repro.subtree.bmf import SubtreeRootCache

#: Scheme names in the order figures present them (Table 5).
SCHEME_NAMES = (
    "unsecure",
    "mac_only",
    "conventional",
    "static_device",
    "adaptive",
    "common_ctr",
    "multi_ctr_only",
    "ours",
    "ours_dual",
    "ours_no_switch",
    "bmf_unused",
    "bmf_unused_ours",
    "bmf_unused_ours_no_switch",
)


def _pruned_region(footprint_bytes: Optional[int], config: SoCConfig) -> int:
    """Tree span under PENGLAI-style unused-region pruning [16]."""
    if footprint_bytes is None:
        return config.memory.protected_bytes
    return max(CHUNK_BYTES, align_up(footprint_bytes, CHUNK_BYTES))


def build_scheme(
    name: str,
    config: SoCConfig,
    footprint_bytes: Optional[int] = None,
    device_granularities: Optional[Dict[int, int]] = None,
    obs=None,
) -> ProtectionScheme:
    """Instantiate a scheme by its Table-5 name.

    ``footprint_bytes`` (the scenario's allocated span) is only used by
    the ``bmf_unused*`` schemes, whose trees are pruned to the used
    region; every other scheme covers the full protected range.
    ``device_granularities`` is required by ``static_device``.
    ``obs`` (an :class:`~repro.obs.ObsContext`) attaches tracing and a
    metrics registry to the built scheme.
    """
    scheme = _build(name, config, footprint_bytes, device_granularities)
    scheme.attach_obs(obs)
    return scheme


def _build(
    name: str,
    config: SoCConfig,
    footprint_bytes: Optional[int],
    device_granularities: Optional[Dict[int, int]],
) -> ProtectionScheme:
    full = config.memory.protected_bytes
    pruned = _pruned_region(footprint_bytes, config)

    if name == "unsecure":
        return UnsecureScheme(config, full)
    if name == "mac_only":
        return MacOnlyScheme(config, full)
    if name == "conventional":
        return ConventionalScheme(config, full)
    if name == "static_device":
        if device_granularities is None:
            raise ConfigError("static_device needs device_granularities")
        return StaticGranularScheme(config, device_granularities, full)
    if name == "adaptive":
        return AdaptiveMacScheme(config, full)
    if name == "common_ctr":
        return CommonCountersScheme(config, full)
    if name == "multi_ctr_only":
        return MultiGranularScheme(config, full, mac_multigranular=False)
    if name == "ours":
        return MultiGranularScheme(config, full)
    if name == "ours_dual":
        return MultiGranularScheme(
            config,
            full,
            min_coarse=GRANULARITIES[3],
            max_granularity=GRANULARITIES[3],
        )
    if name == "ours_no_switch":
        return MultiGranularScheme(config, full, charge_switch_costs=False)
    if name == "bmf_unused":
        return ConventionalScheme(config, pruned, subtree=SubtreeRootCache())
    if name == "bmf_unused_ours":
        return MultiGranularScheme(config, pruned, subtree=SubtreeRootCache())
    if name == "bmf_unused_ours_no_switch":
        return MultiGranularScheme(
            config, pruned, subtree=SubtreeRootCache(), charge_switch_costs=False
        )
    raise ConfigError(f"unknown scheme {name!r}; known: {SCHEME_NAMES}")
