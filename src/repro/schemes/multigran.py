"""The paper's scheme: dynamic multi-granular MAC & integrity tree.

Per request (Fig. 8 / Fig. 11):

1. the access tracker observes the line; evicted entries run the
   granularity detector and update the granularity table's ``next``
   bitmap (a table write);
2. the granularity table is consulted (a table read through its cache)
   and lazily switched when ``current`` and ``next`` disagree for the
   touched region, charging the Table-2 switching costs;
3. data moves at the resolved granularity through the region buffer;
4. the counter is read/updated at its *promoted* tree level (Eqs. 2-4),
   shortening the verification walk;
5. the (merged, compacted) MAC line is accessed (Eq. 1).

Configuration knobs express the paper's ablations:

* ``mac_multigranular=False``  -> Multi(CTR)-only (Fig. 17/18);
* ``min_coarse=max_granularity=32KB`` -> the dual-granularity
  ablation of Fig. 20;
* ``charge_switch_costs=False`` -> the w/o-switching-overhead
  ablation of Fig. 20;
* ``subtree=SubtreeRootCache()`` (+ footprint-sized tree)
  -> BMF&Unused+Ours.
"""

from __future__ import annotations

from typing import Optional

from repro.common.config import SoCConfig
from repro.common.constants import (
    CACHELINE_BYTES,
    CHUNK_BYTES,
    GRANULARITIES,
    granularity_level,
)
from repro.common.types import MemoryRequest, MetadataKind
from repro.core import addressing
from repro.core.detector import merge_detection
from repro.core.gran_table import GranularityTable, SwitchEvent
from repro.core.switching import categorize, cost_of
from repro.core.tracker import AccessTracker
from repro.mem.channel import MemoryChannel
from repro.obs import EventType
from repro.schemes.base import ProtectionScheme
from repro.subtree.bmf import SubtreeRootCache


class MultiGranularScheme(ProtectionScheme):
    """Dynamic multi-granular counters and MACs (``Ours``)."""

    name = "ours"

    def __init__(
        self,
        config: SoCConfig,
        region_bytes: Optional[int] = None,
        mac_multigranular: bool = True,
        min_coarse: int = GRANULARITIES[1],
        max_granularity: int = GRANULARITIES[3],
        charge_switch_costs: bool = True,
        subtree: Optional[SubtreeRootCache] = None,
    ) -> None:
        super().__init__(config, region_bytes)
        self.table = GranularityTable(
            table_base=self.geometry.table_base,
            min_coarse=min_coarse,
            max_granularity=max_granularity,
        )
        self.tracker = AccessTracker(config.engine.tracker)
        self.mac_multigranular = mac_multigranular
        self.retains_fine_macs = mac_multigranular
        self.charge_switch_costs = charge_switch_costs
        self.subtree = subtree
        if not mac_multigranular:
            self.name = "multi_ctr_only"
        if subtree is not None:
            self.name = "bmf_unused_ours"

    # ------------------------------------------------------------------

    def reset_stats(self) -> None:
        """End-of-warmup hook: bank pending detections, then zero stats."""
        for eviction in self.tracker.drain():
            chunk = eviction.entry.chunk_index
            bits = merge_detection(
                self.table.entry_by_chunk(chunk).next,
                eviction.entry.access_bits,
                censored=eviction.reason == "capacity",
            )
            self.table.record_detection(chunk, bits)
        super().reset_stats()

    def _trusted_stop(self, level: int, node: int) -> bool:
        return self.subtree is not None and self.subtree.trusted(level, node)

    def _region_eviction_feedback(self, victim: dict) -> None:
        """Misprediction handler: tile an over-coarse region down locally.

        A coarse region that paid coverage debt was over-promoted.
        Only the partitions with *sparse* evidence (touched but not
        fully streamed) are demoted: clearing their bits breaks the
        coarse unit in place -- a FULL chunk drops to 4KB groups, a
        group to 512B partitions -- while fully streamed partitions
        keep their promotion.  Future sparse touches therefore meet an
        ever-finer unit, shrinking the damage geometrically (paper
        Sec. 4.4, misprediction handler + lazy switching).
        """
        base = victim["base"]
        granularity = victim["granularity"]
        covered = victim["covered"]
        entry = self.table.entry(base)
        parts = max(1, granularity // GRANULARITIES[1])
        first_part = (base % CHUNK_BYTES) // GRANULARITIES[1]
        lines_per_part = GRANULARITIES[1] // CACHELINE_BYTES
        part_full = (1 << lines_per_part) - 1

        demote_mask = 0
        first_untouched = None
        for part in range(parts):
            window = (covered >> (part * lines_per_part)) & part_full
            if window == part_full:
                continue
            if window:
                demote_mask |= 1 << (first_part + part)
            elif first_untouched is None:
                first_untouched = first_part + part
        if demote_mask == 0 and first_untouched is not None:
            # A clean prefix (partial burst): break the unit minimally.
            demote_mask = 1 << first_untouched
        entry.next &= ~demote_mask
        entry.demote_hold = 2

    def _process(
        self, req: MemoryRequest, cycle: float, channel: MemoryChannel
    ) -> float:
        # 1. Access tracker -> detector -> table "next" updates.
        for eviction in self.tracker.observe(req.addr, int(cycle)):
            chunk = eviction.entry.chunk_index
            bits = merge_detection(
                self.table.entry_by_chunk(chunk).next,
                eviction.entry.access_bits,
                censored=eviction.reason == "capacity",
            )
            if self.table.record_detection(chunk, bits):
                chunk_addr = chunk * CHUNK_BYTES
                self._table_access(
                    self.table.entry_line_addr(chunk_addr), True, cycle, channel
                )

        # 2. Granularity-table lookup + lazy switching.
        self._table_access(
            self.table.entry_line_addr(req.addr), False, cycle, channel
        )
        granularity, event = self.table.resolve(req.addr, req.is_write)
        self.stats.switching.record_resolution(switched=event is not None)
        self.stats.granularity_hist.add(granularity)
        if event is not None:
            self.stats.switching.record_event(event)
            if self.tracer:
                self.tracer.emit(
                    EventType.SWITCH,
                    cycle,
                    device=req.device,
                    chunk=req.addr // CHUNK_BYTES,
                    old=event.old_granularity,
                    new=event.new_granularity,
                    scale_up=event.scale_up,
                    category=categorize(event),
                )
                if self.mac_multigranular:
                    self.tracer.emit(
                        EventType.MAC_MERGE
                        if event.scale_up
                        else EventType.MAC_SPLIT,
                        cycle,
                        device=req.device,
                        chunk=req.addr // CHUNK_BYTES,
                        granularity=event.new_granularity,
                    )
            self._table_access(
                self.table.entry_line_addr(req.addr), True, cycle, channel
            )
            if self.charge_switch_costs:
                self._charge_switch(event, cycle, channel)

        mac_granularity = granularity if self.mac_multigranular else GRANULARITIES[0]

        # 3. Data movement at the MAC granularity (merged-MAC verification
        #    operates on the whole region; counters alone do not force
        #    region-sized movement).
        data_ready = self._fetch_data_region(req, mac_granularity, cycle, channel)

        # 4. Promoted counter access.
        level = granularity_level(granularity)
        if self.subtree is not None:
            self.subtree.admit(
                self.geometry.node_of_addr(req.addr, self.subtree.level)
            )
        if req.is_write:
            self._counter_write_walk(
                req.addr, level, cycle, channel, self._trusted_stop
            )
            ctr_ready = cycle
        else:
            ctr_ready = self._counter_read_walk(
                req.addr, level, cycle, channel, self._trusted_stop
            )

        # 5. Merged + compacted MAC access.
        mac_line = self._mac_line_of(req.addr, mac_granularity)
        mac_ready = self._mac_access(mac_line, req.is_write, cycle, channel)

        if req.is_write:
            return cycle
        return self._crypto_done(data_ready, ctr_ready, mac_ready)

    # ------------------------------------------------------------------

    def _mac_line_of(self, addr: int, mac_granularity: int) -> int:
        if not self.mac_multigranular:
            return self.geometry.fine_mac_line_addr(addr // CACHELINE_BYTES)
        bits = self.table.entry(addr).current
        return addressing.mac_line_addr(
            self.geometry, bits, addr, self.table.max_granularity
        )

    def _charge_switch(
        self, event: SwitchEvent, cycle: float, channel: MemoryChannel
    ) -> None:
        """Inject the Table-2 costs of one lazy switch.

        Only scale-up costs are charged here: scale-down re-keying
        needs the region's data, and the region buffer's coverage-debt
        accounting already paid for exactly that fetch (charging it
        again would double count).
        """
        cost = cost_of(event)
        if not event.scale_up:
            return
        if cost.tree_fetch_to_root:
            # Seal the promoted counter: touch its node and every
            # ancestor up to the root (cache hits make the RAW case
            # nearly free, exactly as Table 2 notes).
            self._counter_write_walk(
                event.addr,
                granularity_level(event.new_granularity),
                cycle,
                channel,
                self._trusted_stop,
            )
        mac_side = cost.extra_mac_lines if self.mac_multigranular else 0
        data_side = cost.extra_data_lines if self.mac_multigranular else 0
        for _ in range(mac_side + data_side):
            self._transfer(channel, cycle, MetadataKind.SWITCH)
