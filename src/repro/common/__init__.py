"""Shared substrate: constants, address algebra, value types, configs."""

from repro.common import address, constants
from repro.common.config import (
    CacheConfig,
    DeviceConfig,
    EngineConfig,
    MemoryConfig,
    SoCConfig,
    TrackerConfig,
)
from repro.common.errors import (
    AddressError,
    ConfigError,
    CounterOverflowError,
    IntegrityError,
    QuarantineError,
    ReplayError,
    ReproError,
    SecurityError,
)
from repro.common.types import (
    AccessOutcome,
    AccessType,
    DeviceKind,
    GranularityDecision,
    MemoryRequest,
    MetadataKind,
    TrafficBreakdown,
)

__all__ = [
    "address",
    "constants",
    "CacheConfig",
    "DeviceConfig",
    "EngineConfig",
    "MemoryConfig",
    "SoCConfig",
    "TrackerConfig",
    "AddressError",
    "ConfigError",
    "CounterOverflowError",
    "IntegrityError",
    "QuarantineError",
    "ReplayError",
    "ReproError",
    "SecurityError",
    "AccessOutcome",
    "AccessType",
    "DeviceKind",
    "GranularityDecision",
    "MemoryRequest",
    "MetadataKind",
    "TrafficBreakdown",
]
