"""Global architectural constants shared by every subsystem.

The paper (Section 4.2) adopts an 8-arity counter tree built on 64B
cachelines, which fixes the four supported granularities at 64B, 512B,
4KB and 32KB -- each one arity (8x) coarser than the previous.  All of
the address algebra in :mod:`repro.common.address` and the tree geometry
in :mod:`repro.tree` derive from the numbers defined here.
"""

from __future__ import annotations

#: Size of one cacheline / memory block in bytes (the finest granularity).
CACHELINE_BYTES = 64

#: Arity of the counter integrity tree (children per node, counters per line).
TREE_ARITY = 8

#: Supported protection granularities in bytes, finest first (paper Sec. 4.2).
GRANULARITIES = (64, 512, 4096, 32768)

#: Finest supported granularity (one cacheline).
FINE_GRAIN_BYTES = GRANULARITIES[0]

#: Second-finest granularity; the paper calls a 512B block a *partition*.
PARTITION_BYTES = GRANULARITIES[1]

#: Coarsest supported granularity; the paper calls a 32KB block a *chunk*.
CHUNK_BYTES = GRANULARITIES[-1]

#: Cachelines per 32KB chunk (= bits in one access-tracker entry vector).
LINES_PER_CHUNK = CHUNK_BYTES // CACHELINE_BYTES  # 512

#: 512B partitions per 32KB chunk (= bits in one ``stream_part`` bitmap).
PARTITIONS_PER_CHUNK = CHUNK_BYTES // PARTITION_BYTES  # 64

#: Cachelines per 512B partition.
LINES_PER_PARTITION = PARTITION_BYTES // CACHELINE_BYTES  # 8

#: Bits used for the in-chunk cacheline offset of a 64-bit address.
CHUNK_OFFSET_BITS = 15  # log2(32KB)

#: Bits of a 64-bit address that form the chunk index (paper Sec. 4.4).
CHUNK_INDEX_BITS = 64 - CHUNK_OFFSET_BITS  # 49

#: Size of one MAC in bytes (8B MAC per 64B block, paper Sec. 2.2).
MAC_BYTES = 8

#: MACs that fit in one 64B MAC cacheline.
MACS_PER_LINE = CACHELINE_BYTES // MAC_BYTES  # 8

#: Counter width in bytes used by the functional layer (8B => 8 per line).
COUNTER_BYTES = 8

#: Counters per 64B counter cacheline (equals the tree arity).
COUNTERS_PER_LINE = CACHELINE_BYTES // COUNTER_BYTES  # 8

# ---------------------------------------------------------------------------
# Timing constants (paper Sec. 5.1, "Memory protection engine")
# ---------------------------------------------------------------------------

#: Latency of one-time-pad generation, in cycles.
OTP_LATENCY_CYCLES = 10

#: Latency of the OTP XOR with the data, in cycles.
XOR_LATENCY_CYCLES = 1

#: Latency of one MAC (keyed hash) computation, in cycles.
MAC_LATENCY_CYCLES = 10

#: Default metadata (counter + tree node) cache capacity in bytes.
METADATA_CACHE_BYTES = 8 * 1024

#: Default MAC cache capacity in bytes.
MAC_CACHE_BYTES = 4 * 1024

#: Default granularity-table cache capacity in bytes (models the 0.3%
#: overhead the paper attributes to table accesses via a small cache).
GRAN_TABLE_CACHE_BYTES = 8 * 1024

#: Number of access-tracker entries (3 x 4 processing units, paper Sec. 4.4).
ACCESS_TRACKER_ENTRIES = 12

#: Lifetime of one access-tracker entry, in cycles (paper Sec. 4.4).
TRACKER_LIFETIME_CYCLES = 16 * 1024

# ---------------------------------------------------------------------------
# Memory-system constants (paper Table 3: NVIDIA-Orin-like LPDDR4 system)
# ---------------------------------------------------------------------------

#: Reference simulation clock in Hz. Devices are normalized to this clock.
SIM_CLOCK_HZ = 1_000_000_000

#: Shared LPDDR4 bandwidth in bytes per reference cycle (17 GB/s @ 1 GHz).
DRAM_BYTES_PER_CYCLE = 17.0

#: Idle (unloaded) DRAM access latency in reference cycles.
DRAM_LATENCY_CYCLES = 100

#: Size of the simulated protected physical memory (4GB, paper Sec. 4.4).
PROTECTED_MEMORY_BYTES = 4 * 1024 * 1024 * 1024


def granularity_level(granularity: int) -> int:
    """Return the level index (0..3) of a supported granularity.

    Level 0 is 64B (fine), level 3 is 32KB (coarsest).  Raises
    :class:`ValueError` for unsupported sizes, because silent fallback
    would corrupt the address computation of Eqs. 1-4.
    """
    try:
        return GRANULARITIES.index(granularity)
    except ValueError:
        raise ValueError(
            f"unsupported granularity {granularity}; expected one of {GRANULARITIES}"
        ) from None
