"""Core value types: access kinds, device kinds, memory requests.

These are deliberately tiny frozen dataclasses / enums -- they flow in
huge quantities through the trace pipeline, so they carry no behaviour
beyond classification helpers.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, Optional


class AccessType(enum.Enum):
    """Kind of a memory access as seen by the protection engine."""

    READ = "read"
    WRITE = "write"

    @property
    def is_write(self) -> bool:
        return self is AccessType.WRITE


class DeviceKind(enum.Enum):
    """Class of processing unit issuing a request (paper Sec. 2.1)."""

    CPU = "cpu"
    GPU = "gpu"
    NPU = "npu"


@dataclass(frozen=True)
class MemoryRequest:
    """One LLC-miss-level memory request.

    Attributes:
        cycle: issue cycle in the device's local timeline.
        addr: physical byte address (64B-aligned for data requests).
        size: bytes requested (usually one cacheline; NPU bursts are
            emitted as runs of cacheline requests, so size stays 64B).
        access: read or write.
        device: index of the issuing processing unit in the SoC.
        kind: device class, used for per-device statistics.
    """

    cycle: int
    addr: int
    size: int
    access: AccessType
    device: int = 0
    kind: DeviceKind = DeviceKind.CPU

    @property
    def is_write(self) -> bool:
        return self.access is AccessType.WRITE


class MetadataKind(enum.Enum):
    """Classes of off-chip traffic, used for breakdown figures."""

    DATA = "data"
    COUNTER = "counter"
    MAC = "mac"
    GRAN_TABLE = "gran_table"
    SWITCH = "switch"


@dataclass
class TrafficBreakdown:
    """Byte counts of off-chip traffic by metadata class."""

    bytes_by_kind: Dict[MetadataKind, int] = field(
        default_factory=lambda: {kind: 0 for kind in MetadataKind}
    )

    def add(self, kind: MetadataKind, nbytes: int) -> None:
        self.bytes_by_kind[kind] += nbytes

    @property
    def total_bytes(self) -> int:
        return sum(self.bytes_by_kind.values())

    @property
    def data_bytes(self) -> int:
        return self.bytes_by_kind[MetadataKind.DATA]

    @property
    def metadata_bytes(self) -> int:
        return self.total_bytes - self.data_bytes

    def merged_with(self, other: "TrafficBreakdown") -> "TrafficBreakdown":
        merged = TrafficBreakdown()
        for kind in MetadataKind:
            merged.bytes_by_kind[kind] = (
                self.bytes_by_kind[kind] + other.bytes_by_kind[kind]
            )
        return merged


@dataclass(frozen=True)
class GranularityDecision:
    """Result of resolving an address through the granularity table.

    Attributes:
        granularity: effective protection granularity in bytes.
        switched: True when this access triggered a lazy granularity
            switch (``next`` differed from ``current``).
        mispredicted: True when the stored granularity did not match
            the observed access pattern class for this request.
    """

    granularity: int
    switched: bool = False
    mispredicted: bool = False


@dataclass
class AccessOutcome:
    """Timing-layer result of pushing one request through a scheme.

    The SoC simulator converts this into channel transactions.

    Attributes:
        data_lines: 64B data transactions to issue.
        metadata_lines: counter/tree-node transactions (cache misses).
        mac_lines: MAC transactions (cache misses).
        table_lines: granularity-table transactions.
        switch_lines: extra transactions caused by granularity switching.
        crypto_cycles: serialized crypto latency added to completion.
        serialized_levels: tree levels fetched on the critical path
            (reads only; used for latency, not bandwidth).
        granularity: effective granularity used for this access.
    """

    data_lines: int = 1
    metadata_lines: int = 0
    mac_lines: int = 0
    table_lines: int = 0
    switch_lines: int = 0
    crypto_cycles: int = 0
    serialized_levels: int = 0
    granularity: Optional[int] = None

    @property
    def total_lines(self) -> int:
        return (
            self.data_lines
            + self.metadata_lines
            + self.mac_lines
            + self.table_lines
            + self.switch_lines
        )
