"""Lightweight statistics helpers used across experiments and schemes."""

from __future__ import annotations

import math
from collections import Counter
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Sequence, Tuple


class CounterStats:
    """A named bag of monotonically increasing event counters."""

    def __init__(self) -> None:
        self._counts: Counter = Counter()

    def bump(self, name: str, amount: int = 1) -> None:
        self._counts[name] += amount

    def get(self, name: str) -> int:
        return self._counts[name]

    def as_dict(self) -> Dict[str, int]:
        return dict(self._counts)

    def merge(self, other: "CounterStats") -> None:
        self._counts.update(other._counts)

    def ratio(self, numerator: str, denominator: str) -> float:
        """Safe ratio of two counters (0.0 when the denominator is 0)."""
        denom = self._counts[denominator]
        if denom == 0:
            return 0.0
        return self._counts[numerator] / denom


def mean(values: Sequence[float]) -> float:
    """Arithmetic mean; 0.0 for an empty sequence."""
    if not values:
        return 0.0
    return sum(values) / len(values)


def geomean(values: Sequence[float]) -> float:
    """Geometric mean over the *positive* values; 0.0 for empty input.

    Non-positive values (a normalized time can underflow to 0 in
    degenerate short runs) carry no multiplicative information, so they
    are skipped rather than crashing ``math.log``.  All-non-positive
    input yields 0.0.
    """
    positive = [v for v in values if v > 0.0]
    if not positive:
        return 0.0
    return math.exp(sum(math.log(v) for v in positive) / len(positive))


def percentile(values: Sequence[float], q: float) -> float:
    """Linear-interpolated percentile.

    ``q`` is clamped into [0, 100]: ``q<0`` returns the minimum and
    ``q>100`` the maximum instead of silently indexing out of range.
    """
    if not values:
        return 0.0
    q = min(100.0, max(0.0, q))
    ordered = sorted(values)
    if len(ordered) == 1:
        return ordered[0]
    pos = (q / 100.0) * (len(ordered) - 1)
    lo = int(math.floor(pos))
    hi = int(math.ceil(pos))
    frac = pos - lo
    return ordered[lo] * (1 - frac) + ordered[hi] * frac


def cdf_points(values: Iterable[float]) -> List[Tuple[float, float]]:
    """(value, cumulative fraction) pairs of the empirical CDF."""
    ordered = sorted(values)
    n = len(ordered)
    return [(v, (i + 1) / n) for i, v in enumerate(ordered)]


@dataclass
class RunningMean:
    """Streaming mean without storing samples."""

    count: int = 0
    total: float = 0.0

    def add(self, value: float) -> None:
        self.count += 1
        self.total += value

    @property
    def value(self) -> float:
        return self.total / self.count if self.count else 0.0


@dataclass
class Histogram:
    """Integer-bucket histogram used for chunk-granularity distributions."""

    buckets: Dict[int, int] = field(default_factory=dict)

    def add(self, key: int, amount: int = 1) -> None:
        self.buckets[key] = self.buckets.get(key, 0) + amount

    @property
    def total(self) -> int:
        return sum(self.buckets.values())

    def fraction(self, key: int) -> float:
        total = self.total
        if total == 0:
            return 0.0
        return self.buckets.get(key, 0) / total

    def fractions(self) -> Dict[int, float]:
        total = self.total
        if total == 0:
            return {}
        return {k: v / total for k, v in self.buckets.items()}
