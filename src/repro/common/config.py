"""Configuration dataclasses for the simulated SoC and security engine.

Defaults follow the paper's Table 3 (NVIDIA-Orin-like system) and the
engine hyper-parameters of Sec. 5.1.  All configs are frozen: a config
object describes a simulation, it never mutates during one.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.common import constants
from repro.common.errors import ConfigError


@dataclass(frozen=True)
class CacheConfig:
    """Geometry of one on-chip cache.

    Attributes:
        capacity_bytes: total capacity.
        line_bytes: line size (metadata caches always use 64B lines).
        ways: associativity.
    """

    capacity_bytes: int
    line_bytes: int = constants.CACHELINE_BYTES
    ways: int = 8

    def __post_init__(self) -> None:
        if self.capacity_bytes <= 0 or self.line_bytes <= 0 or self.ways <= 0:
            raise ConfigError(f"invalid cache config {self}")
        lines = self.capacity_bytes // self.line_bytes
        if lines == 0:
            raise ConfigError("cache smaller than one line")
        if lines % self.ways != 0:
            raise ConfigError(
                f"{lines} lines not divisible into {self.ways} ways"
            )

    @property
    def num_lines(self) -> int:
        return self.capacity_bytes // self.line_bytes

    @property
    def num_sets(self) -> int:
        return self.num_lines // self.ways


@dataclass(frozen=True)
class MemoryConfig:
    """Shared off-chip memory channel (paper Table 3: LPDDR4, 17 GB/s).

    ``banks=0`` uses the simple latency+occupancy channel; a positive
    value enables the bank-aware row-buffer model of
    :class:`repro.mem.dram.BankedMemoryChannel`.
    """

    bytes_per_cycle: float = constants.DRAM_BYTES_PER_CYCLE
    latency_cycles: int = constants.DRAM_LATENCY_CYCLES
    protected_bytes: int = constants.PROTECTED_MEMORY_BYTES
    banks: int = 0

    def __post_init__(self) -> None:
        if self.bytes_per_cycle <= 0 or self.latency_cycles < 0 or self.banks < 0:
            raise ConfigError(f"invalid memory config {self}")

    @property
    def line_occupancy_cycles(self) -> float:
        """Channel occupancy of one 64B transfer."""
        return constants.CACHELINE_BYTES / self.bytes_per_cycle


@dataclass(frozen=True)
class TrackerConfig:
    """Access-tracker geometry (paper Sec. 4.4)."""

    entries: int = constants.ACCESS_TRACKER_ENTRIES
    lifetime_cycles: int = constants.TRACKER_LIFETIME_CYCLES

    def __post_init__(self) -> None:
        if self.entries <= 0 or self.lifetime_cycles <= 0:
            raise ConfigError(f"invalid tracker config {self}")


@dataclass(frozen=True)
class EngineConfig:
    """Security-engine hyper-parameters (paper Sec. 5.1).

    Attributes:
        metadata_cache: unified counter + tree-node cache (8KB default).
        mac_cache: MAC cache (4KB default).
        table_cache: cache in front of the protected granularity table.
        tracker: access tracker geometry.
        unified_metadata_cache: merge the counter and MAC caches into
            one structure (the "unified metadata cache" design the
            paper's Sec. 2.2 mentions as an alternative).
        otp_latency: OTP generation latency in cycles.
        xor_latency: OTP XOR latency in cycles.
        mac_latency: MAC computation latency in cycles.
    """

    metadata_cache: CacheConfig = field(
        default_factory=lambda: CacheConfig(constants.METADATA_CACHE_BYTES)
    )
    mac_cache: CacheConfig = field(
        default_factory=lambda: CacheConfig(constants.MAC_CACHE_BYTES)
    )
    table_cache: CacheConfig = field(
        default_factory=lambda: CacheConfig(constants.GRAN_TABLE_CACHE_BYTES)
    )
    tracker: TrackerConfig = field(default_factory=TrackerConfig)
    unified_metadata_cache: bool = False
    otp_latency: int = constants.OTP_LATENCY_CYCLES
    xor_latency: int = constants.XOR_LATENCY_CYCLES
    mac_latency: int = constants.MAC_LATENCY_CYCLES


@dataclass(frozen=True)
class DeviceConfig:
    """Issue model of one processing unit.

    Attributes:
        name: label used in reports ("cpu", "gpu", "npu0", ...).
        max_outstanding: memory-level parallelism window.  The CPU
            window is small (latency-sensitive), the GPU window is
            large (latency-hiding), NPUs sit in between but issue
            large bursts (paper Sec. 5.4 discusses the consequences).
        dependent_loads: fraction of reads that cannot issue before the
            previous read returns (pointer-chase dependencies).  This
            is what makes CPUs latency-sensitive: every cycle the
            protection engine adds to a miss lands on the critical
            path, while a GPU's deep window hides it (Sec. 3.2).
        clock_ratio: device clock relative to the 1 GHz reference.
    """

    name: str
    max_outstanding: int
    dependent_loads: float = 0.0
    clock_ratio: float = 1.0

    def __post_init__(self) -> None:
        if self.max_outstanding <= 0 or self.clock_ratio <= 0:
            raise ConfigError(f"invalid device config {self}")
        if not 0.0 <= self.dependent_loads <= 1.0:
            raise ConfigError(f"invalid dependent_loads in {self}")


def default_cpu_config(name: str = "cpu") -> DeviceConfig:
    """8-core 2.2GHz Cortex-class CPU: small window, chained loads."""
    return DeviceConfig(
        name=name, max_outstanding=8, dependent_loads=0.5, clock_ratio=2.2
    )


def default_gpu_config(name: str = "gpu") -> DeviceConfig:
    """14-SM Ampere-class integrated GPU: deep latency-hiding window."""
    return DeviceConfig(name=name, max_outstanding=64, clock_ratio=1.0)


def default_npu_config(name: str = "npu") -> DeviceConfig:
    """45x45 systolic-array NVDLA-class NPU: bursty medium window."""
    return DeviceConfig(
        name=name, max_outstanding=32, dependent_loads=0.12, clock_ratio=1.0
    )


@dataclass(frozen=True)
class SoCConfig:
    """Full heterogeneous SoC: devices + memory + security engine."""

    devices: tuple = field(
        default_factory=lambda: (
            default_cpu_config(),
            default_gpu_config(),
            default_npu_config("npu0"),
            default_npu_config("npu1"),
        )
    )
    memory: MemoryConfig = field(default_factory=MemoryConfig)
    engine: EngineConfig = field(default_factory=EngineConfig)
    #: Simulation execution tier: ``"scalar"`` (pure-stdlib reference
    #: loop) or ``"fast"`` (numpy-accelerated batch engine, falls back
    #: to scalar when numpy or the scheme's fast path is unavailable).
    #: Either tier produces byte-identical results; see
    #: docs/performance.md "Engine tiers".
    sim_engine: str = "scalar"

    def __post_init__(self) -> None:
        names = [dev.name for dev in self.devices]
        if len(names) != len(set(names)):
            raise ConfigError(f"duplicate device names: {names}")
        if self.sim_engine not in ("scalar", "fast"):
            raise ConfigError(
                f"unknown sim_engine {self.sim_engine!r}; "
                "expected 'scalar' or 'fast'"
            )
