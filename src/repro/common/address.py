"""Address algebra for chunks, partitions and cachelines.

The paper splits a 64-bit physical address into a 49-bit *chunk index*
(32KB chunk) and a 15-bit in-chunk offset (Sec. 4.4).  Every component
of the system -- the access tracker, the granularity table, the
multi-granular addressing of Eqs. 1-4 -- works in these units, so the
helpers live here in one place.
"""

from __future__ import annotations

from repro.common.constants import (
    CACHELINE_BYTES,
    CHUNK_BYTES,
    CHUNK_OFFSET_BITS,
    LINES_PER_PARTITION,
    PARTITION_BYTES,
    PARTITIONS_PER_CHUNK,
)
from repro.common.errors import AddressError


def align_down(addr: int, granularity: int) -> int:
    """Round ``addr`` down to a multiple of ``granularity``."""
    return addr - (addr % granularity)


def align_up(addr: int, granularity: int) -> int:
    """Round ``addr`` up to a multiple of ``granularity``."""
    return align_down(addr + granularity - 1, granularity)


def is_aligned(addr: int, granularity: int) -> bool:
    """True when ``addr`` is a multiple of ``granularity``."""
    return addr % granularity == 0


def line_index(addr: int) -> int:
    """Global 64B cacheline index of ``addr``."""
    return addr // CACHELINE_BYTES


def line_base(addr: int) -> int:
    """Base address of the 64B cacheline containing ``addr``."""
    return align_down(addr, CACHELINE_BYTES)


def chunk_index(addr: int) -> int:
    """49-bit chunk index: the upper bits of the address (paper Fig. 12)."""
    return addr >> CHUNK_OFFSET_BITS


def chunk_base(addr: int) -> int:
    """Base address of the 32KB chunk containing ``addr``."""
    return align_down(addr, CHUNK_BYTES)


def chunk_offset(addr: int) -> int:
    """In-chunk byte offset: the lower 15 bits of the address."""
    return addr & (CHUNK_BYTES - 1)


def cacheline_in_chunk(addr: int) -> int:
    """Index (0..511) of the 64B line of ``addr`` within its 32KB chunk."""
    return chunk_offset(addr) // CACHELINE_BYTES


def partition_in_chunk(addr: int) -> int:
    """Index (0..63) of the 512B partition of ``addr`` within its chunk."""
    return chunk_offset(addr) // PARTITION_BYTES


def partition_index(addr: int) -> int:
    """Global 512B partition index of ``addr``."""
    return addr // PARTITION_BYTES


def line_in_partition(addr: int) -> int:
    """Index (0..7) of the 64B line of ``addr`` within its 512B partition."""
    return (addr // CACHELINE_BYTES) % LINES_PER_PARTITION


def partitions_of_chunk(chunk_idx: int) -> range:
    """Global partition indices covered by chunk ``chunk_idx``."""
    first = chunk_idx * PARTITIONS_PER_CHUNK
    return range(first, first + PARTITIONS_PER_CHUNK)


def iter_lines(addr: int, size: int) -> range:
    """Global cacheline indices touched by the byte range [addr, addr+size)."""
    if size <= 0:
        raise AddressError(f"non-positive access size {size}")
    first = addr // CACHELINE_BYTES
    last = (addr + size - 1) // CACHELINE_BYTES
    return range(first, last + 1)


def check_range(addr: int, size: int, limit: int) -> None:
    """Raise :class:`AddressError` unless [addr, addr+size) fits in [0, limit)."""
    if addr < 0 or size <= 0 or addr + size > limit:
        raise AddressError(
            f"access [{addr:#x}, {addr + size:#x}) outside protected region "
            f"of {limit:#x} bytes"
        )
