"""Deterministic random-number utilities.

Every stochastic component (workload generators, scenario sampling)
derives its stream from an explicit seed so that experiment rows are
reproducible run-to-run.  Seeds are themselves derived by hashing
string labels, so adding a new workload never perturbs the streams of
existing ones.
"""

from __future__ import annotations

import hashlib
import random


def seed_from_label(label: str, base_seed: int = 0) -> int:
    """Derive a stable 63-bit seed from a string label and a base seed."""
    digest = hashlib.blake2b(
        f"{base_seed}:{label}".encode("utf-8"), digest_size=8
    ).digest()
    return int.from_bytes(digest, "little") & (2**63 - 1)


def rng_for(label: str, base_seed: int = 0) -> random.Random:
    """A :class:`random.Random` whose stream depends only on the label."""
    return random.Random(seed_from_label(label, base_seed))
