"""Exception hierarchy for the repro package.

All library errors derive from :class:`ReproError` so callers can catch
one base class.  Security violations get their own branch because they
are *expected* outcomes of the functional layer's tamper tests, not bugs.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by this library."""


class ConfigError(ReproError):
    """An invalid simulator or scheme configuration was supplied."""


class AddressError(ReproError):
    """An address is outside the protected region or misaligned."""


class SecurityError(ReproError):
    """Base class for detected attacks in the functional layer."""


class IntegrityError(SecurityError):
    """A MAC check failed: off-chip data or metadata was tampered with."""


class ReplayError(SecurityError):
    """The integrity tree detected a stale (replayed) counter value."""


class CounterOverflowError(SecurityError):
    """A write counter exhausted its width and would repeat an OTP."""


class QuarantineError(SecurityError):
    """An access touched a quarantined (previously tampered) region.

    Raised instead of returning unverifiable data: under the
    ``quarantine`` failure policies the engine keeps serving the rest
    of the protected region after an integrity failure, but every
    access to the poisoned region itself fails closed with this error
    until the region is healed by fresh writes.
    """
