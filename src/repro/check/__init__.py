"""Differential-oracle correctness subsystem (``python -m repro check``).

``repro.check`` is the safety net under the optimized metadata-layout
code: a deliberately simple, obviously-correct *reference model* of the
paper's multi-granular layout (Eqs. 1-4 addressing, Alg. 1 detection,
promotion/pruning geometry, Fig. 9 MAC compaction, Fig. 13 counter
re-keying) plus harnesses that replay seeded request streams through
both the optimized engine and the oracle and fail loudly on the first
divergence.

Modules:

* :mod:`repro.check.oracle`       -- naive reference implementations;
* :mod:`repro.check.streams`      -- seeded request-stream generation;
* :mod:`repro.check.differential` -- engine-vs-oracle replay harness;
* :mod:`repro.check.metamorphic`  -- permutation / split / idempotence
  relations that must hold for any correct implementation;
* :mod:`repro.check.golden`       -- committed golden-corpus digests;
* :mod:`repro.check.timing`       -- timing-layer (scheme) invariants;
* :mod:`repro.check.runner`       -- the ``--quick`` / ``--deep`` tiers.

See ``docs/correctness.md`` for the full workflow.
"""

from repro.check.differential import DifferentialHarness, Divergence, DivergenceError
from repro.check.golden import corpus_digest, load_corpus, write_corpus
from repro.check.oracle import RefGeometry, RefModel
from repro.check.runner import CheckReport, run_check
from repro.check.streams import StreamSpec, generate_stream

__all__ = [
    "CheckReport",
    "DifferentialHarness",
    "Divergence",
    "DivergenceError",
    "RefGeometry",
    "RefModel",
    "StreamSpec",
    "corpus_digest",
    "generate_stream",
    "load_corpus",
    "run_check",
    "write_corpus",
]
