"""Seeded request-stream generation for the differential harness.

A stream is a list of :class:`Op` values -- single-cacheline reads and
writes plus explicit clock advances.  Profiles are designed to steer
the multi-granular machinery through its interesting regimes:

* ``stream``    -- full-chunk bursts: full-vector tracker evictions,
  promotion to 32KB, reads through the promoted layout;
* ``sparse``    -- scattered lines over more chunks than the tracker
  holds: capacity evictions and censored detection merges;
* ``mixed``     -- fully streamed 4KB groups next to sparse lines in
  the same chunks: 4KB/512B promotions, fine residue, compacted MAC
  indices that actually move;
* ``boundary``  -- chunk/group/partition edges and 7-of-8 partitions:
  off-by-one bait for the addressing and detection code;
* ``phase``     -- stream, then sparse rewrites of the same region:
  demotions (scale-down) exercising Fig. 13 counter retention;
* ``permute``   -- group-structured accesses used by the metamorphic
  permutation check (groups of distinct never-touched lines within
  one chunk, clock advances only between groups).

Everything is driven by ``random.Random(seed)`` only, so a
``StreamSpec`` regenerates the identical stream on any platform.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Iterable, List

from repro.common.constants import (
    CACHELINE_BYTES,
    CHUNK_BYTES,
    GRANULARITIES,
    LINES_PER_CHUNK,
    LINES_PER_PARTITION,
    PARTITIONS_PER_CHUNK,
    TRACKER_LIFETIME_CYCLES,
)

#: Clock advance large enough to expire every live tracker entry.
EXPIRE_CYCLES = TRACKER_LIFETIME_CYCLES + 64

PROFILES = ("stream", "sparse", "mixed", "boundary", "phase", "permute")


@dataclass(frozen=True)
class Op:
    """One harness operation."""

    kind: str  # "read" | "write" | "advance"
    addr: int = 0
    cycles: int = 0
    group: int = -1  # permutation-group id (-1: not permutable)


@dataclass(frozen=True)
class StreamSpec:
    """Deterministic recipe for one request stream."""

    name: str
    profile: str
    seed: int
    ops: int
    region_chunks: int = 32

    @property
    def region_bytes(self) -> int:
        return self.region_chunks * CHUNK_BYTES

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "profile": self.profile,
            "seed": self.seed,
            "ops": self.ops,
            "region_chunks": self.region_chunks,
        }


def _line_addr(chunk: int, line: int) -> int:
    return chunk * CHUNK_BYTES + line * CACHELINE_BYTES


def _emit_chunk_burst(out: List[Op], chunk: int, write: bool = True) -> None:
    kind = "write" if write else "read"
    for line in range(LINES_PER_CHUNK):
        out.append(Op(kind, _line_addr(chunk, line)))


def _stream_profile(rng: random.Random, ops: int, chunks: int) -> List[Op]:
    out: List[Op] = []
    while len(out) < ops:
        chunk = rng.randrange(chunks)
        _emit_chunk_burst(out, chunk, write=True)
        out.append(Op("advance", cycles=EXPIRE_CYCLES))
        for _ in range(48):
            out.append(Op("read", _line_addr(chunk, rng.randrange(LINES_PER_CHUNK))))
        for _ in range(16):
            out.append(Op("write", _line_addr(chunk, rng.randrange(LINES_PER_CHUNK))))
    return out[:ops]


def _sparse_profile(rng: random.Random, ops: int, chunks: int) -> List[Op]:
    out: List[Op] = []
    for index in range(ops):
        chunk = rng.randrange(chunks)
        line = rng.randrange(LINES_PER_CHUNK)
        kind = "write" if rng.random() < 0.5 else "read"
        out.append(Op(kind, _line_addr(chunk, line)))
        if index % 97 == 96:
            out.append(Op("advance", cycles=EXPIRE_CYCLES))
    return out[:ops]


def _mixed_profile(rng: random.Random, ops: int, chunks: int) -> List[Op]:
    lines_per_group = GRANULARITIES[2] // CACHELINE_BYTES
    groups_per_chunk = CHUNK_BYTES // GRANULARITIES[2]
    out: List[Op] = []
    while len(out) < ops:
        chunk = rng.randrange(chunks)
        group = rng.randrange(groups_per_chunk)
        first = group * lines_per_group
        # Fully stream one 4KB group, sparsely touch the rest.
        for line in range(first, first + lines_per_group):
            out.append(Op("write", _line_addr(chunk, line)))
        for _ in range(12):
            line = rng.randrange(LINES_PER_CHUNK)
            out.append(
                Op("write" if rng.random() < 0.5 else "read", _line_addr(chunk, line))
            )
        out.append(Op("advance", cycles=EXPIRE_CYCLES))
        # Revisit: the group switches coarse, the sparse lines stay fine.
        for _ in range(24):
            if rng.random() < 0.5:
                line = first + rng.randrange(lines_per_group)
            else:
                line = rng.randrange(LINES_PER_CHUNK)
            out.append(Op("read", _line_addr(chunk, line)))
    return out[:ops]


def _boundary_profile(rng: random.Random, ops: int, chunks: int) -> List[Op]:
    out: List[Op] = []
    edges = [0, chunks - 1]
    while len(out) < ops:
        chunk = rng.choice(edges) if rng.random() < 0.5 else rng.randrange(chunks)
        part = rng.choice(
            [0, 1, PARTITIONS_PER_CHUNK - 1, rng.randrange(PARTITIONS_PER_CHUNK)]
        )
        first = part * LINES_PER_PARTITION
        skipped = rng.randrange(LINES_PER_PARTITION)
        # 7-of-8 partition: must NOT be detected as a stream.
        for line in range(first, first + LINES_PER_PARTITION):
            if line - first != skipped:
                out.append(Op("write", _line_addr(chunk, line)))
        if rng.random() < 0.5:
            # Complete it later: now it must be detected.
            out.append(Op("write", _line_addr(chunk, first + skipped)))
        out.append(Op("read", _line_addr(chunk, first)))
        out.append(Op("read", _line_addr(chunk, LINES_PER_CHUNK - 1)))
        if rng.random() < 0.25:
            out.append(Op("advance", cycles=EXPIRE_CYCLES))
    return out[:ops]


def _phase_profile(rng: random.Random, ops: int, chunks: int) -> List[Op]:
    out: List[Op] = []
    while len(out) < ops:
        chunk = rng.randrange(chunks)
        _emit_chunk_burst(out, chunk, write=True)
        out.append(Op("advance", cycles=EXPIRE_CYCLES))
        # Apply the promotion, then turn sparse: partial partitions
        # demote on the next eviction.
        for _ in range(24):
            part = rng.randrange(PARTITIONS_PER_CHUNK)
            line = part * LINES_PER_PARTITION + rng.randrange(LINES_PER_PARTITION)
            out.append(Op("write", _line_addr(chunk, line)))
        out.append(Op("advance", cycles=EXPIRE_CYCLES))
        for _ in range(24):
            out.append(Op("read", _line_addr(chunk, rng.randrange(LINES_PER_CHUNK))))
    return out[:ops]


def _permute_profile(rng: random.Random, ops: int, chunks: int) -> List[Op]:
    """Group-structured stream for the permutation metamorphic check.

    Each group touches one chunk with distinct, never-before-touched
    lines, so any permutation *within* a group must leave the final
    functional state unchanged.  Clock advances sit only between
    groups, keeping tracker evictions at group boundaries.
    """
    out: List[Op] = []
    group_id = 0
    used_parts: dict = {}
    # Concentrate on few chunks so partitions complete and the permuted
    # stream crosses real promotion/demotion switches.
    chunks = min(4, chunks)
    while len(out) < ops:
        chunk = rng.randrange(chunks)
        parts_used = used_parts.setdefault(chunk, set())
        free_parts = [p for p in range(PARTITIONS_PER_CHUNK) if p not in parts_used]
        if not free_parts:
            used_parts[chunk] = set()
            free_parts = list(range(PARTITIONS_PER_CHUNK))
            # Reset at a group boundary with an expiry, so re-touched
            # lines always start from an empty tracker entry.
            out.append(Op("advance", cycles=EXPIRE_CYCLES))
        if parts_used and rng.random() < 0.25:
            # Revisit an already-classified partition: this is where the
            # lazily deferred promotion/demotion switch actually fires.
            part = rng.choice(sorted(parts_used))
            lines = [part * LINES_PER_PARTITION + i for i in range(LINES_PER_PARTITION)]
            for line in lines:
                out.append(Op("read", _line_addr(chunk, line), group=group_id))
            group_id += 1
            if rng.random() < 0.25:
                out.append(Op("advance", cycles=EXPIRE_CYCLES))
            continue
        if rng.random() < 0.8 or len(free_parts) <= 4:
            # Whole partitions: complete stream evidence -> promotions.
            count = min(len(free_parts), rng.randrange(1, 4))
            parts = rng.sample(free_parts, count)
            lines = [
                p * LINES_PER_PARTITION + i
                for p in parts
                for i in range(LINES_PER_PARTITION)
            ]
        else:
            # Partial partition: sparse evidence -> demotions.
            parts = [rng.choice(free_parts)]
            lines = [
                parts[0] * LINES_PER_PARTITION + i
                for i in rng.sample(range(LINES_PER_PARTITION), rng.randrange(2, 7))
            ]
        parts_used.update(parts)
        kind = "write" if rng.random() < 0.7 else "read"
        for line in lines:
            out.append(Op(kind, _line_addr(chunk, line), group=group_id))
        group_id += 1
        if rng.random() < 0.25:
            out.append(Op("advance", cycles=EXPIRE_CYCLES))
    return out[:ops]


_GENERATORS = {
    "stream": _stream_profile,
    "sparse": _sparse_profile,
    "mixed": _mixed_profile,
    "boundary": _boundary_profile,
    "phase": _phase_profile,
    "permute": _permute_profile,
}


def generate_stream(spec: StreamSpec) -> List[Op]:
    """Materialize the deterministic op list of ``spec``."""
    try:
        generator = _GENERATORS[spec.profile]
    except KeyError:
        raise ValueError(
            f"unknown profile {spec.profile!r}; known: {sorted(_GENERATORS)}"
        ) from None
    rng = random.Random(spec.seed)
    return generator(rng, spec.ops, spec.region_chunks)


def touched_addrs(ops: Iterable[Op]) -> List[int]:
    """Sorted distinct line addresses a stream reads or writes."""
    return sorted({op.addr for op in ops if op.kind in ("read", "write")})
