"""The ``python -m repro check`` tiers: quick (CI) and deep (nightly).

Sections, in order:

1. **functions**   -- randomized cross-check of every pure layout
   function (optimized vs naive oracle): granularity resolution,
   bitmap quantization, Alg. 1 detection + merge, Eq. 2/3 promotion
   arithmetic, Eq. 1 MAC compaction, tree geometry across several
   region sizes.
2. **differential** -- lock-step engine-vs-oracle replay of the tier's
   seeded streams (:mod:`repro.check.differential`).
3. **metamorphic** -- permutation / split-resume / read-idempotence
   relations (:mod:`repro.check.metamorphic`).
4. **golden**      -- replay digests must match the committed corpus
   under ``tests/golden/`` (:mod:`repro.check.golden`).
5. **timing**      -- scheme-level metadata-address invariants
   (:mod:`repro.check.timing`); deep tier only, plus a small slice in
   quick.
6. **determinism** -- deep tier only: one scenario simulated twice
   must produce byte-identical payloads.

``inject_layout_bug()`` deliberately breaks the compacted-MAC offset
(off by one) so CI can prove the harness actually detects layout bugs
and names the first mismatching request.
"""

from __future__ import annotations

import contextlib
import random
import time
from dataclasses import dataclass, field
from typing import Callable, List, Optional

from repro.check import golden as golden_mod
from repro.check import metamorphic
from repro.check import oracle as ref
from repro.check import timing
from repro.check.differential import DifferentialHarness, DivergenceError
from repro.check.streams import StreamSpec, generate_stream
from repro.common.constants import (
    CHUNK_BYTES,
    GRANULARITIES,
    LINES_PER_CHUNK,
    PARTITIONS_PER_CHUNK,
)
from repro.core import addressing, detector, stream_part
from repro.tree.geometry import TreeGeometry


class CheckFailure(AssertionError):
    """A check section failed outside the differential diff itself."""


# ---------------------------------------------------------------------------
# Tiered stream corpora (shared with scripts/refresh_goldens.py)
# ---------------------------------------------------------------------------


def quick_specs() -> List[StreamSpec]:
    return [
        StreamSpec("q-stream", "stream", seed=11, ops=700),
        StreamSpec("q-sparse", "sparse", seed=13, ops=600),
        StreamSpec("q-mixed", "mixed", seed=17, ops=700),
        StreamSpec("q-boundary", "boundary", seed=19, ops=600),
        StreamSpec("q-phase", "phase", seed=23, ops=700),
        StreamSpec("q-permute", "permute", seed=29, ops=500),
    ]


def deep_specs() -> List[StreamSpec]:
    specs = quick_specs()
    specs += [
        StreamSpec("d-stream", "stream", seed=101, ops=2500),
        StreamSpec("d-sparse", "sparse", seed=103, ops=2500),
        StreamSpec("d-mixed", "mixed", seed=107, ops=2500),
        StreamSpec("d-boundary", "boundary", seed=109, ops=2000),
        StreamSpec("d-phase", "phase", seed=113, ops=2500),
        StreamSpec("d-permute", "permute", seed=127, ops=1500),
        # Geometry variety: smaller and larger protected regions.
        StreamSpec("d-small-region", "mixed", seed=131, ops=1200, region_chunks=8),
        StreamSpec("d-large-region", "sparse", seed=137, ops=1200, region_chunks=64),
    ]
    return specs


def specs_for_tier(tier: str) -> List[StreamSpec]:
    if tier == "quick":
        return quick_specs()
    if tier == "deep":
        return deep_specs()
    raise ValueError(f"unknown tier {tier!r}")


# ---------------------------------------------------------------------------
# Seeded layout bug (CI proves the harness can catch one)
# ---------------------------------------------------------------------------


@contextlib.contextmanager
def inject_layout_bug():
    """Off-by-one the compacted-MAC offset (Eq. 1) for the duration."""
    original = addressing.mac_index_in_chunk

    def buggy(bits: int, addr: int, max_granularity: int = GRANULARITIES[3]) -> int:
        return original(bits, addr, max_granularity) + 1

    addressing.mac_index_in_chunk = buggy
    try:
        yield
    finally:
        addressing.mac_index_in_chunk = original


# ---------------------------------------------------------------------------
# Section 1: pure-function sweeps
# ---------------------------------------------------------------------------


def _interesting_bitmaps(rng: random.Random, count: int) -> List[int]:
    bitmaps = [0, stream_part.FULL_MASK]
    # Whole 4KB groups, single partitions, and near-full patterns.
    for group in range(PARTITIONS_PER_CHUNK // ref.PARTS_PER_GROUP):
        mask = 0
        first = group * ref.PARTS_PER_GROUP
        for part in range(first, first + ref.PARTS_PER_GROUP):
            mask |= 1 << part
        bitmaps.append(mask)
    bitmaps.append(stream_part.FULL_MASK & ~1)
    bitmaps.append(stream_part.FULL_MASK & ~(1 << (PARTITIONS_PER_CHUNK - 1)))
    while len(bitmaps) < count:
        bitmaps.append(rng.getrandbits(PARTITIONS_PER_CHUNK))
    return bitmaps


def _check_functions(samples: int, seed: int) -> dict:
    rng = random.Random(seed)
    checked = 0

    def expect(label: str, got, want) -> None:
        nonlocal checked
        checked += 1
        if got != want:
            raise CheckFailure(f"functions: {label}: optimized={got!r} naive={want!r}")

    for granularity in GRANULARITIES:
        expect(
            f"num_parents({granularity})",
            addressing.num_parents(granularity),
            ref.ref_num_parents(granularity),
        )
        for _ in range(8):
            leaf = rng.randrange(1 << 20)
            parents = ref.ref_num_parents(granularity)
            expect(
                f"ancestor_index({leaf}, {parents})",
                addressing.ancestor_index(leaf, parents),
                ref.ref_ancestor_index(leaf, parents),
            )

    for bits in _interesting_bitmaps(rng, samples):
        addr = rng.randrange(LINES_PER_CHUNK) * 64 + rng.randrange(8) * CHUNK_BYTES
        for max_g in GRANULARITIES[1:]:
            expect(
                f"resolve_granularity(0x{bits:x}, 0x{addr:x}, {max_g})",
                stream_part.resolve_granularity(bits, addr, max_g),
                ref.ref_resolve_granularity(bits, addr, max_g),
            )
        for min_coarse in GRANULARITIES[1:]:
            expect(
                f"quantize_bits(0x{bits:x}, {min_coarse})",
                stream_part.quantize_bits(bits, min_coarse),
                ref.ref_quantize_bits(bits, min_coarse),
            )
        expect(
            f"mac_index_in_chunk(0x{bits:x}, 0x{addr:x})",
            addressing.mac_index_in_chunk(bits, addr),
            ref.ref_mac_index(bits, addr),
        )
        expect(
            f"macs_per_chunk(0x{bits:x})",
            addressing.macs_per_chunk(bits),
            ref.ref_macs_per_chunk(bits),
        )

    for _ in range(samples):
        vector = rng.getrandbits(LINES_PER_CHUNK)
        expect(
            f"detect_stream_partitions(0x{vector:x})",
            detector.detect_stream_partitions(vector),
            ref.ref_detect_stream_partitions(vector),
        )
        previous = rng.getrandbits(PARTITIONS_PER_CHUNK)
        for censored in (False, True):
            expect(
                f"merge_detection(0x{previous:x}, 0x{vector:x}, {censored})",
                detector.merge_detection(previous, vector, censored),
                ref.ref_merge_detection(previous, vector, censored),
            )

    for chunks in (1, 8, 32, 64):
        region = chunks * CHUNK_BYTES
        opt = TreeGeometry.build(region)
        naive = ref.RefGeometry(region)
        expect(
            f"geometry[{chunks}].level_counts",
            tuple(opt.level_counts),
            naive.level_counts,
        )
        expect(f"geometry[{chunks}].mac_base", opt.mac_base, naive.mac_base)
        expect(f"geometry[{chunks}].tree_base", opt.tree_base, naive.tree_base)
        expect(f"geometry[{chunks}].table_base", opt.table_base, naive.table_base)
        for _ in range(16):
            addr = rng.randrange(region)
            level = rng.randrange(naive.num_levels)
            expect(
                f"geometry[{chunks}].counter_slot(0x{addr:x}, {level})",
                opt.counter_slot(addr, level),
                naive.counter_slot(addr, level),
            )
            node, _ = naive.counter_slot(addr, level)
            expect(
                f"geometry[{chunks}].node_addr({level}, {node})",
                opt.node_addr(level, node),
                naive.node_addr(level, node),
            )
            expect(
                f"geometry[{chunks}].path_to_root(0x{addr:x})",
                list(opt.path_to_root(addr)),
                naive.path_to_root(addr),
            )
            line = addr // 64
            expect(
                f"geometry[{chunks}].fine_mac_addr({line})",
                opt.fine_mac_addr(line),
                naive.mac_base + line * 8,
            )
    return {"checked": checked}


# ---------------------------------------------------------------------------
# Report plumbing
# ---------------------------------------------------------------------------


@dataclass
class SectionResult:
    name: str
    status: str  # "pass" | "fail" | "skip"
    detail: str
    seconds: float


@dataclass
class CheckReport:
    tier: str
    sections: List[SectionResult] = field(default_factory=list)

    @property
    def passed(self) -> bool:
        return all(s.status != "fail" for s in self.sections)

    def format(self) -> str:
        lines = [f"repro check --{self.tier}"]
        for s in self.sections:
            mark = {"pass": "ok", "fail": "FAIL", "skip": "skip"}[s.status]
            lines.append(f"  [{mark:>4}] {s.name:<12} {s.seconds:6.2f}s  {s.detail}")
        lines.append("PASS" if self.passed else "FAIL")
        return "\n".join(lines)


def _run_section(
    report: CheckReport,
    name: str,
    fn: Callable[[], str],
    echo: Optional[Callable[[str], None]],
) -> bool:
    start = time.perf_counter()
    try:
        detail = fn()
        status = "pass"
    except (DivergenceError, metamorphic.MetamorphicError, CheckFailure,
            timing.TimingInvariantError, ValueError, OSError) as exc:
        detail = str(exc)
        status = "fail"
    seconds = time.perf_counter() - start
    result = SectionResult(name, status, detail, seconds)
    report.sections.append(result)
    if echo is not None:
        mark = "ok" if status == "pass" else "FAIL"
        echo(f"[{mark:>4}] {name:<12} {seconds:6.2f}s  {detail}")
    return status == "pass"


# ---------------------------------------------------------------------------
# run_check
# ---------------------------------------------------------------------------


def run_check(
    tier: str = "quick",
    seed: int = 0,
    golden_dir: Optional[str] = golden_mod.DEFAULT_GOLDEN_DIR,
    echo: Optional[Callable[[str], None]] = None,
    engine: str = "scalar",
) -> CheckReport:
    """Run one check tier; never raises, inspect ``report.passed``.

    ``engine="fast"`` runs the differential section with windowed numpy
    verification of the layout observables (byte-identical digests --
    records always store oracle values); when numpy is missing it
    degrades to scalar with a notice.
    """
    if engine not in ("scalar", "fast"):
        raise ValueError(f"unknown check engine {engine!r}")
    if engine == "fast":
        from repro.engine_fast import numpy_or_none, warn_scalar_fallback

        if numpy_or_none() is None:
            warn_scalar_fallback("numpy not importable")
            if echo is not None:
                echo("note: numpy unavailable; check runs on the scalar engine")
            engine = "scalar"
    specs = specs_for_tier(tier)
    report = CheckReport(tier=tier)
    harnesses: dict = {}

    samples = 64 if tier == "quick" else 256
    _run_section(
        report,
        "functions",
        lambda: f"{_check_functions(samples, seed + 1)['checked']} cross-checks",
        echo,
    )

    def differential() -> str:
        total = 0
        for spec in specs:
            harness = DifferentialHarness(
                spec.region_bytes, seed=spec.seed + seed, engine_mode=engine
            )
            harness.replay(generate_stream(spec))
            harnesses[spec.name] = harness
            total += len(harness.records)
        return (
            f"{len(specs)} streams, {total} requests, all observables "
            f"equal (engine={engine})"
        )

    if not _run_section(report, "differential", differential, echo):
        return report

    def run_metamorphic() -> str:
        permute = [s for s in specs if s.profile == "permute"]
        for spec in permute:
            metamorphic.check_permutation(spec, variants=2 if tier == "quick" else 4)
        split_specs = [s for s in specs if s.profile in ("mixed", "sparse")][:2]
        for spec in split_specs:
            metamorphic.check_split_resume(spec)
        metamorphic.check_read_idempotence(specs[0])
        return (
            f"permutation x{len(permute)}, split-resume x{len(split_specs)}, "
            "read-idempotence x1"
        )

    _run_section(report, "metamorphic", run_metamorphic, echo)

    def golden() -> str:
        if golden_dir is None:
            return "skipped (no golden dir)"
        path = golden_mod.corpus_path(golden_dir, tier)
        committed = golden_mod.load_corpus(path)
        digests = [golden_mod.corpus_digest(harnesses[s.name]) for s in specs]
        actual = golden_mod.make_corpus(tier, specs, digests)
        problems = golden_mod.diff_corpus(committed, actual)
        if problems:
            raise CheckFailure(
                "golden corpus drift (rerun scripts/refresh_goldens.py if "
                "intended): " + "; ".join(problems)
            )
        return f"{len(specs)} stream digests match {path}"

    if seed == 0:
        _run_section(report, "golden", golden, echo)
    else:
        report.sections.append(
            SectionResult("golden", "skip", "skipped (non-default seed)", 0.0)
        )

    def run_timing() -> str:
        timing_specs = specs[:2] if tier == "quick" else specs[:6]
        total = timing.TimingCheckResult(0, 0, 0, 0)
        for spec in timing_specs:
            ops = generate_stream(spec)
            if tier == "quick":
                ops = ops[:300]
            result = timing.check_timing_invariants(
                ops, spec.region_bytes, label=spec.name
            )
            total = timing.TimingCheckResult(
                total.requests + result.requests,
                total.counter_fills + result.counter_fills,
                total.mac_fills + result.mac_fills,
                total.table_fills + result.table_fills,
            )
        return (
            f"{total.requests} requests: {total.counter_fills} counter / "
            f"{total.mac_fills} mac / {total.table_fills} table fills on-layout"
        )

    _run_section(report, "timing", run_timing, echo)

    if tier == "deep":

        def determinism() -> str:
            import json

            from repro.sim.runner import clear_static_best_cache, run_scenario
            from repro.sim.scenario import selected_scenario

            scenario = selected_scenario("cc1")
            payloads = []
            for _ in range(2):
                clear_static_best_cache()
                runs = run_scenario(scenario, ("ours",), None, 1500.0, seed=7)
                payloads.append(
                    json.dumps(
                        {k: r.to_dict() for k, r in runs.items()}, sort_keys=True
                    )
                )
            if payloads[0] != payloads[1]:
                raise CheckFailure("identical simulation produced different payloads")
            return "re-simulation byte-identical"

        _run_section(report, "determinism", determinism, echo)

    return report
