"""Engine-vs-oracle differential replay harness.

Replays one seeded op stream through the real optimized engine
(:class:`repro.secure_memory.engine.SecureMemory`, multigranular
policy) and the naive reference model (:class:`repro.check.oracle.
RefModel`) in lock-step, and after *every* request diffs every
observable the two sides share:

* effective granularity of the touched address;
* the chunk's ``current`` / ``next`` stream-part bitmaps;
* the counter value of the resolved protection region;
* compacted MAC index / address (optimized ``core.addressing`` vs the
  literal region walk), plus presence of the MAC at the predicted
  address after a write;
* per-chunk MAC count under the live bitmap;
* counter location (optimized ``locate_counter`` vs Eq. 2/3 re-derived
  slot and node address) and the window classification of every
  metadata address the op implies;
* plaintext read data;
* cycle and cumulative lazy-switch counts.

The first mismatch raises :class:`DivergenceError` whose report names
the mismatching request (index, kind, address) and the differing
field.  Each op also appends a stable integer-only observation record,
which the golden corpus digests.

``engine_mode="fast"`` defers the pure layout-math diffs (Eq. 1 MAC
compaction, Eq. 2-4 counter location) into windows verified in one
vectorized numpy pass per :data:`WINDOW_OPS` requests via
:mod:`repro.engine_fast.tables` -- and diffs *both* the scalar
``core.addressing`` values and the independent numpy derivation
against the oracle, so a bug injected into either implementation
(e.g. :func:`repro.check.runner.inject_layout_bug`) is still caught.
Observation records always store the oracle's values, so golden-corpus
digests are byte-identical across engine modes.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.check import oracle as ref
from repro.check.streams import Op
from repro.common.constants import (
    CACHELINE_BYTES,
    CHUNK_BYTES,
    LINES_PER_CHUNK,
    MAC_BYTES,
    granularity_level,
)
from repro.core import addressing
from repro.crypto.keys import KeySet
from repro.secure_memory.engine import SecureMemory


@dataclass(frozen=True)
class Divergence:
    """One engine/oracle disagreement, anchored to the request stream."""

    index: int
    kind: str
    addr: int
    fld: str
    engine: object
    oracle: object

    def describe(self) -> str:
        return (
            f"first divergence at request #{self.index} "
            f"({self.kind} addr=0x{self.addr:x}): field {self.fld!r} "
            f"engine={self.engine!r} oracle={self.oracle!r}"
        )


class DivergenceError(AssertionError):
    """Raised on the first engine/oracle mismatch."""

    def __init__(self, divergence: Divergence) -> None:
        super().__init__(divergence.describe())
        self.divergence = divergence


def _payload(seed: int, addr: int, version: int) -> bytes:
    """Deterministic, address-keyed line payload.

    Depends only on (seed, addr, per-address write ordinal), never on
    the op's position in the stream, so permuting independent ops does
    not change what any address ends up holding.
    """
    tag = f"{seed}:{addr}:{version}".encode()
    return hashlib.blake2b(tag, digest_size=CACHELINE_BYTES).digest()


#: Fast-mode verification window: layout observables of this many ops
#: are diffed in one vectorized pass (and at stream end).
WINDOW_OPS = 256


@dataclass
class DifferentialHarness:
    """Lock-step replay of one op stream through engine and oracle."""

    region_bytes: int
    seed: int = 0
    engine_mode: str = "scalar"
    records: List[dict] = field(default_factory=list)

    def __post_init__(self) -> None:
        if self.engine_mode not in ("scalar", "fast"):
            raise ValueError(f"unknown engine_mode {self.engine_mode!r}")
        if self.engine_mode == "fast":
            from repro.engine_fast import numpy_or_none

            if numpy_or_none() is None:
                raise ValueError(
                    "engine_mode='fast' requires numpy (install .[fast])"
                )
        keys = KeySet.from_seed(f"repro-check-{self.seed}".encode())
        self.engine = SecureMemory(
            self.region_bytes, keys=keys, policy="multigranular", counter_bits=64
        )
        self.oracle = ref.RefModel(self.region_bytes)
        self.ref_geometry = ref.RefGeometry(self.region_bytes)
        self._write_versions: Dict[int, int] = {}
        self._index = 0
        #: Fast mode: deferred layout observables, one tuple per op.
        self._pending: List[tuple] = []

    # -- replay ---------------------------------------------------------

    def replay(self, ops: Sequence[Op]) -> None:
        """Run ``ops``; raise :class:`DivergenceError` on first mismatch."""
        for op in ops:
            self._step(op)
        self._flush_window()

    def _step(self, op: Op) -> None:
        index = self._index
        self._index += 1
        if op.kind == "advance":
            # A barrier event: settle any deferred window first so a
            # divergence is reported before the epoch moves on.
            self._flush_window()
            self.engine.advance(op.cycles)
            self.oracle.advance(op.cycles)
            self.records.append({"i": index, "op": "advance", "cycles": op.cycles})
            return
        if op.kind == "write":
            version = self._write_versions.get(op.addr, 0)
            self._write_versions[op.addr] = version + 1
            payload = _payload(self.seed, op.addr, version)
            self.engine.write(op.addr, payload)
            self.oracle.write(op.addr, payload)
            engine_data = oracle_data = payload
        elif op.kind == "read":
            engine_data = self.engine.read(op.addr, CACHELINE_BYTES)
            oracle_data = self.oracle.read(op.addr)
        else:
            raise ValueError(f"unknown op kind {op.kind!r}")
        self._observe(index, op, engine_data, oracle_data)

    # -- per-op observation + diff --------------------------------------

    def _diff(self, index: int, kind: str, addr: int, fld: str, engine, oracle) -> None:
        if engine != oracle:
            raise DivergenceError(
                Divergence(index, kind, addr, fld, engine, oracle)
            )

    def _observe(self, index: int, op: Op, engine_data, oracle_data) -> None:
        diff = self._diff
        kind = op.kind
        addr = op.addr
        diff(index, kind, addr, "data", engine_data, oracle_data)
        diff(index, kind, addr, "cycle", self.engine.cycle, self.oracle.cycle)
        diff(index, kind, addr, "switches", self.engine.switches, self.oracle.switches)

        engine_current, engine_next = self.engine.table_bits(addr)
        current, nxt = self.oracle.bits_of(addr)
        diff(index, kind, addr, "bits.current", engine_current, current)
        diff(index, kind, addr, "bits.next", engine_next, nxt)

        granularity = self.engine.granularity_of(addr)
        diff(
            index, kind, addr, "granularity",
            granularity, self.oracle.granularity_of(addr),
        )

        level = granularity_level(granularity)
        region_base = addr - addr % granularity
        counter = self.engine.counter_value(addr, granularity)
        diff(
            index, kind, addr, "counter",
            counter, self.oracle.counter_of(region_base, level),
        )

        # Eq. 1 / Fig. 9: the oracle's literal region walk.  One walk
        # serves index, address and per-chunk count.
        max_g = self.engine.table.max_granularity
        spans = ref.ref_region_spans(current, max_g)
        offset = addr % CHUNK_BYTES
        ref_index = next(
            i for i, (off, g) in enumerate(spans) if off <= offset < off + g
        )
        ref_mac = (
            self.region_bytes
            + (addr // CHUNK_BYTES) * LINES_PER_CHUNK * MAC_BYTES
            + ref_index * MAC_BYTES
        )
        node, slot = self.ref_geometry.counter_slot(addr, level)
        ref_node_addr = self.ref_geometry.node_addr(level, node)

        if self.engine_mode == "fast":
            # Defer the pure layout-math diffs to the vectorized
            # window pass; everything state-dependent stays per-op.
            self._pending.append(
                (index, kind, addr, current, granularity, level,
                 ref_index, ref_mac, len(spans), node, slot, ref_node_addr)
            )
            if len(self._pending) >= WINDOW_OPS:
                self._flush_window()
        else:
            self._check_layout_scalar(
                index, kind, addr, current, granularity, level,
                ref_index, ref_mac, len(spans), node, slot, ref_node_addr,
            )

        if kind == "write":
            diff(index, kind, addr, "mac.sealed", self.engine.has_mac(ref_mac), True)

        # Every implied metadata address must land in its window.
        diff(
            index, kind, addr, "window.mac",
            self.ref_geometry.classify(ref_mac), "mac",
        )
        diff(
            index, kind, addr, "window.tree",
            self.ref_geometry.classify(ref_node_addr), "tree",
        )
        diff(
            index, kind, addr, "window.table",
            self.ref_geometry.classify(self.engine.table.entry_line_addr(addr)),
            "table",
        )

        self.records.append(
            {
                "i": index,
                "op": op.kind,
                "addr": addr,
                "granularity": granularity,
                "current": current,
                "next": nxt,
                "counter": counter,
                "mac_index": ref_index,
                "switches": self.engine.switches,
            }
        )

    # -- layout-math verification (per-op scalar / windowed fast) -------

    def _check_layout_scalar(
        self, index, kind, addr, current, granularity, level,
        ref_index, ref_mac, ref_per_chunk, node, slot, ref_node_addr,
    ) -> None:
        """Diff optimized ``core.addressing`` against the oracle walk."""
        diff = self._diff
        max_g = self.engine.table.max_granularity
        diff(
            index, kind, addr, "mac.index",
            addressing.mac_index_in_chunk(current, addr, max_g), ref_index,
        )
        diff(
            index, kind, addr, "mac.addr",
            addressing.mac_addr(self.engine.geometry, current, addr, max_g),
            ref_mac,
        )
        diff(
            index, kind, addr, "mac.per_chunk",
            addressing.macs_per_chunk(current, max_g), ref_per_chunk,
        )
        loc = addressing.locate_counter(self.engine.geometry, addr, granularity)
        diff(index, kind, addr, "counter.level", loc.level, level)
        diff(index, kind, addr, "counter.node", loc.node_index, node)
        diff(index, kind, addr, "counter.slot", loc.slot, slot)
        diff(index, kind, addr, "counter.node_addr", loc.node_addr, ref_node_addr)

    def _flush_window(self) -> None:
        """Fast mode: verify one deferred window in a vectorized pass.

        Diffs the oracle against BOTH implementations -- the scalar
        ``core.addressing`` helpers (so an injected scalar-layout bug
        is still caught under ``--engine fast``) and the independent
        numpy cumulative-sum derivation in
        :mod:`repro.engine_fast.tables`.
        """
        if not self._pending:
            return
        from repro.engine_fast import tables

        pending = self._pending
        self._pending = []
        geometry = self.engine.geometry
        max_g = self.engine.table.max_granularity
        addr_list = [p[2] for p in pending]
        bits_list = [p[3] for p in pending]
        level_list = [p[5] for p in pending]
        fast_index, fast_mac, fast_per = tables.mac_observables(
            geometry, max_g, bits_list, addr_list
        )
        fast_node, fast_slot, fast_node_addr = tables.counter_observables(
            geometry, level_list, addr_list
        )
        diff = self._diff
        for k, p in enumerate(pending):
            (index, kind, addr, current, granularity, level,
             ref_index, ref_mac, ref_per_chunk, node, slot, ref_node_addr) = p
            self._check_layout_scalar(
                index, kind, addr, current, granularity, level,
                ref_index, ref_mac, ref_per_chunk, node, slot, ref_node_addr,
            )
            diff(index, kind, addr, "mac.index[fast]", fast_index[k], ref_index)
            diff(index, kind, addr, "mac.addr[fast]", fast_mac[k], ref_mac)
            diff(
                index, kind, addr, "mac.per_chunk[fast]",
                fast_per[k], ref_per_chunk,
            )
            diff(index, kind, addr, "counter.node[fast]", fast_node[k], node)
            diff(index, kind, addr, "counter.slot[fast]", fast_slot[k], slot)
            diff(
                index, kind, addr, "counter.node_addr[fast]",
                fast_node_addr[k], ref_node_addr,
            )

    # -- state fingerprints (metamorphic relations) ---------------------

    def fingerprint(self, include_counters: bool = True) -> str:
        """Digest of the harness's functional end state.

        ``include_counters=False`` drops counter values and switch
        counts: within a permuted group the *order* decides which
        access triggers a scale-up (``shared = max + 1``), so those are
        legitimately order-dependent while everything else is not.
        """
        chunks: Dict[str, List[int]] = {}
        for chunk in range(self.region_bytes // CHUNK_BYTES):
            entry = self.engine.table.entry_by_chunk(chunk)
            if entry.current or entry.next:
                chunks[str(chunk)] = [entry.current, entry.next]
        state: Dict[str, object] = {
            "chunks": chunks,
            "data": {
                str(addr): hashlib.sha256(line).hexdigest()
                for addr, line in sorted(self.oracle.data.items())
            },
        }
        if include_counters:
            state["counters"] = {
                f"{level}:{region}": value
                for (level, region), value in sorted(self.oracle.counters.items())
                if value
            }
            state["switches"] = self.engine.switches
            state["cycle"] = self.engine.cycle
        blob = _canonical_json(state)
        return hashlib.sha256(blob.encode()).hexdigest()

    def record_digest(self) -> str:
        """Digest of the per-op observation records (golden corpus)."""
        return hashlib.sha256(_canonical_json(self.records).encode()).hexdigest()


def _canonical_json(value) -> str:
    import json

    return json.dumps(value, sort_keys=True, separators=(",", ":"))


def replay_spec(
    spec, ops: Optional[Sequence[Op]] = None, engine_mode: str = "scalar"
) -> DifferentialHarness:
    """Build a harness for ``spec`` and replay its (or the given) ops."""
    from repro.check.streams import generate_stream

    harness = DifferentialHarness(
        spec.region_bytes, seed=spec.seed, engine_mode=engine_mode
    )
    harness.replay(generate_stream(spec) if ops is None else ops)
    return harness
