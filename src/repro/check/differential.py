"""Engine-vs-oracle differential replay harness.

Replays one seeded op stream through the real optimized engine
(:class:`repro.secure_memory.engine.SecureMemory`, multigranular
policy) and the naive reference model (:class:`repro.check.oracle.
RefModel`) in lock-step, and after *every* request diffs every
observable the two sides share:

* effective granularity of the touched address;
* the chunk's ``current`` / ``next`` stream-part bitmaps;
* the counter value of the resolved protection region;
* compacted MAC index / address (optimized ``core.addressing`` vs the
  literal region walk), plus presence of the MAC at the predicted
  address after a write;
* per-chunk MAC count under the live bitmap;
* counter location (optimized ``locate_counter`` vs Eq. 2/3 re-derived
  slot and node address) and the window classification of every
  metadata address the op implies;
* plaintext read data;
* cycle and cumulative lazy-switch counts.

The first mismatch raises :class:`DivergenceError` whose report names
the mismatching request (index, kind, address) and the differing
field.  Each op also appends a stable integer-only observation record,
which the golden corpus digests.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.check import oracle as ref
from repro.check.streams import Op
from repro.common.constants import (
    CACHELINE_BYTES,
    CHUNK_BYTES,
    LINES_PER_CHUNK,
    MAC_BYTES,
    granularity_level,
)
from repro.core import addressing
from repro.crypto.keys import KeySet
from repro.secure_memory.engine import SecureMemory


@dataclass(frozen=True)
class Divergence:
    """One engine/oracle disagreement, anchored to the request stream."""

    index: int
    kind: str
    addr: int
    fld: str
    engine: object
    oracle: object

    def describe(self) -> str:
        return (
            f"first divergence at request #{self.index} "
            f"({self.kind} addr=0x{self.addr:x}): field {self.fld!r} "
            f"engine={self.engine!r} oracle={self.oracle!r}"
        )


class DivergenceError(AssertionError):
    """Raised on the first engine/oracle mismatch."""

    def __init__(self, divergence: Divergence) -> None:
        super().__init__(divergence.describe())
        self.divergence = divergence


def _payload(seed: int, addr: int, version: int) -> bytes:
    """Deterministic, address-keyed line payload.

    Depends only on (seed, addr, per-address write ordinal), never on
    the op's position in the stream, so permuting independent ops does
    not change what any address ends up holding.
    """
    tag = f"{seed}:{addr}:{version}".encode()
    return hashlib.blake2b(tag, digest_size=CACHELINE_BYTES).digest()


@dataclass
class DifferentialHarness:
    """Lock-step replay of one op stream through engine and oracle."""

    region_bytes: int
    seed: int = 0
    records: List[dict] = field(default_factory=list)

    def __post_init__(self) -> None:
        keys = KeySet.from_seed(f"repro-check-{self.seed}".encode())
        self.engine = SecureMemory(
            self.region_bytes, keys=keys, policy="multigranular", counter_bits=64
        )
        self.oracle = ref.RefModel(self.region_bytes)
        self.ref_geometry = ref.RefGeometry(self.region_bytes)
        self._write_versions: Dict[int, int] = {}
        self._index = 0

    # -- replay ---------------------------------------------------------

    def replay(self, ops: Sequence[Op]) -> None:
        """Run ``ops``; raise :class:`DivergenceError` on first mismatch."""
        for op in ops:
            self._step(op)

    def _step(self, op: Op) -> None:
        index = self._index
        self._index += 1
        if op.kind == "advance":
            self.engine.advance(op.cycles)
            self.oracle.advance(op.cycles)
            self.records.append({"i": index, "op": "advance", "cycles": op.cycles})
            return
        if op.kind == "write":
            version = self._write_versions.get(op.addr, 0)
            self._write_versions[op.addr] = version + 1
            payload = _payload(self.seed, op.addr, version)
            self.engine.write(op.addr, payload)
            self.oracle.write(op.addr, payload)
            engine_data = oracle_data = payload
        elif op.kind == "read":
            engine_data = self.engine.read(op.addr, CACHELINE_BYTES)
            oracle_data = self.oracle.read(op.addr)
        else:
            raise ValueError(f"unknown op kind {op.kind!r}")
        self._observe(index, op, engine_data, oracle_data)

    # -- per-op observation + diff --------------------------------------

    def _diff(self, index: int, op: Op, fld: str, engine, oracle) -> None:
        if engine != oracle:
            raise DivergenceError(
                Divergence(index, op.kind, op.addr, fld, engine, oracle)
            )

    def _observe(self, index: int, op: Op, engine_data, oracle_data) -> None:
        diff = self._diff
        addr = op.addr
        diff(index, op, "data", engine_data, oracle_data)
        diff(index, op, "cycle", self.engine.cycle, self.oracle.cycle)
        diff(index, op, "switches", self.engine.switches, self.oracle.switches)

        engine_current, engine_next = self.engine.table_bits(addr)
        current, nxt = self.oracle.bits_of(addr)
        diff(index, op, "bits.current", engine_current, current)
        diff(index, op, "bits.next", engine_next, nxt)

        granularity = self.engine.granularity_of(addr)
        diff(index, op, "granularity", granularity, self.oracle.granularity_of(addr))

        level = granularity_level(granularity)
        region_base = addr - addr % granularity
        counter = self.engine.counter_value(addr, granularity)
        diff(index, op, "counter", counter, self.oracle.counter_of(region_base, level))

        # Eq. 1 / Fig. 9: optimized MAC addressing vs the literal walk.
        # One region walk serves index, address and per-chunk count.
        max_g = self.engine.table.max_granularity
        spans = ref.ref_region_spans(current, max_g)
        offset = addr % CHUNK_BYTES
        ref_index = next(
            i for i, (off, g) in enumerate(spans) if off <= offset < off + g
        )
        ref_mac = (
            self.region_bytes
            + (addr // CHUNK_BYTES) * LINES_PER_CHUNK * MAC_BYTES
            + ref_index * MAC_BYTES
        )
        diff(
            index,
            op,
            "mac.index",
            addressing.mac_index_in_chunk(current, addr, max_g),
            ref_index,
        )
        diff(
            index,
            op,
            "mac.addr",
            addressing.mac_addr(self.engine.geometry, current, addr, max_g),
            ref_mac,
        )
        diff(
            index,
            op,
            "mac.per_chunk",
            addressing.macs_per_chunk(current, max_g),
            len(spans),
        )
        if op.kind == "write":
            diff(index, op, "mac.sealed", self.engine.has_mac(ref_mac), True)

        # Eqs. 2-3: optimized counter location vs naive slot arithmetic.
        loc = addressing.locate_counter(self.engine.geometry, addr, granularity)
        node, slot = self.ref_geometry.counter_slot(addr, level)
        diff(index, op, "counter.level", loc.level, level)
        diff(index, op, "counter.node", loc.node_index, node)
        diff(index, op, "counter.slot", loc.slot, slot)
        diff(
            index,
            op,
            "counter.node_addr",
            loc.node_addr,
            self.ref_geometry.node_addr(level, node),
        )

        # Every implied metadata address must land in its window.
        diff(index, op, "window.mac", self.ref_geometry.classify(ref_mac), "mac")
        diff(
            index, op, "window.tree", self.ref_geometry.classify(loc.node_addr), "tree"
        )
        diff(
            index,
            op,
            "window.table",
            self.ref_geometry.classify(self.engine.table.entry_line_addr(addr)),
            "table",
        )

        self.records.append(
            {
                "i": index,
                "op": op.kind,
                "addr": addr,
                "granularity": granularity,
                "current": current,
                "next": nxt,
                "counter": counter,
                "mac_index": ref_index,
                "switches": self.engine.switches,
            }
        )

    # -- state fingerprints (metamorphic relations) ---------------------

    def fingerprint(self, include_counters: bool = True) -> str:
        """Digest of the harness's functional end state.

        ``include_counters=False`` drops counter values and switch
        counts: within a permuted group the *order* decides which
        access triggers a scale-up (``shared = max + 1``), so those are
        legitimately order-dependent while everything else is not.
        """
        chunks: Dict[str, List[int]] = {}
        for chunk in range(self.region_bytes // CHUNK_BYTES):
            entry = self.engine.table.entry_by_chunk(chunk)
            if entry.current or entry.next:
                chunks[str(chunk)] = [entry.current, entry.next]
        state: Dict[str, object] = {
            "chunks": chunks,
            "data": {
                str(addr): hashlib.sha256(line).hexdigest()
                for addr, line in sorted(self.oracle.data.items())
            },
        }
        if include_counters:
            state["counters"] = {
                f"{level}:{region}": value
                for (level, region), value in sorted(self.oracle.counters.items())
                if value
            }
            state["switches"] = self.engine.switches
            state["cycle"] = self.engine.cycle
        blob = _canonical_json(state)
        return hashlib.sha256(blob.encode()).hexdigest()

    def record_digest(self) -> str:
        """Digest of the per-op observation records (golden corpus)."""
        return hashlib.sha256(_canonical_json(self.records).encode()).hexdigest()


def _canonical_json(value) -> str:
    import json

    return json.dumps(value, sort_keys=True, separators=(",", ":"))


def replay_spec(spec, ops: Optional[Sequence[Op]] = None) -> DifferentialHarness:
    """Build a harness for ``spec`` and replay its (or the given) ops."""
    from repro.check.streams import generate_stream

    harness = DifferentialHarness(spec.region_bytes, seed=spec.seed)
    harness.replay(generate_stream(spec) if ops is None else ops)
    return harness
