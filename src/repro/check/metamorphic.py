"""Metamorphic relations the engine must satisfy for *any* stream.

Differential replay checks "engine == oracle"; the relations here
check the engine against *itself* under transformations that provably
cannot change functional state:

* **permutation** -- reordering accesses within a permutation group
  (distinct, previously untouched lines of one chunk, no clock advance
  inside the group) must leave data contents and both granularity
  bitmaps unchanged.  Counter values and switch counts are excluded:
  inside a group the order decides *which* access triggers a scale-up
  (``shared = max + 1`` is taken once, by whichever access applies the
  lazy switch), so they are legitimately order-dependent.
* **split/resume** -- replaying ``ops[:k]`` then ``ops[k:]`` on one
  harness must be byte-identical (full fingerprint *and* per-op
  observation records) to replaying ``ops`` in one pass: the harness
  keeps no hidden per-call state.
* **read idempotence** -- reading the same line repeatedly returns the
  same plaintext and never changes stored data.
"""

from __future__ import annotations

import random
from typing import Dict, List, Sequence, Tuple

from repro.check.differential import DifferentialHarness
from repro.check.streams import Op, StreamSpec, generate_stream, touched_addrs


class MetamorphicError(AssertionError):
    """A metamorphic relation failed to hold."""


def _permute_groups(ops: Sequence[Op], seed: int) -> List[Op]:
    """Shuffle ops within each permutation group, keep everything else."""
    rng = random.Random(seed)
    out: List[Op] = []
    index = 0
    ops = list(ops)
    while index < len(ops):
        group = ops[index].group
        if group < 0:
            out.append(ops[index])
            index += 1
            continue
        end = index
        while end < len(ops) and ops[end].group == group:
            end += 1
        block = ops[index:end]
        rng.shuffle(block)
        out.extend(block)
        index = end
    return out


def check_permutation(spec: StreamSpec, variants: int = 2) -> Dict[str, object]:
    """Same-group permutations must not change functional state."""
    ops = generate_stream(spec)
    baseline = DifferentialHarness(spec.region_bytes, seed=spec.seed)
    baseline.replay(ops)
    want = baseline.fingerprint(include_counters=False)
    for variant in range(variants):
        permuted = _permute_groups(ops, seed=spec.seed * 1000 + variant)
        harness = DifferentialHarness(spec.region_bytes, seed=spec.seed)
        harness.replay(permuted)
        got = harness.fingerprint(include_counters=False)
        if got != want:
            raise MetamorphicError(
                f"permutation variant {variant} of stream {spec.name!r} changed "
                f"functional state: {got[:16]} != {want[:16]}"
            )
    return {"relation": "permutation", "stream": spec.name, "variants": variants}


def check_split_resume(
    spec: StreamSpec, fractions: Tuple[float, ...] = (0.25, 0.5, 0.75)
) -> Dict[str, object]:
    """Splitting a replay at any point and resuming must be invisible."""
    ops = generate_stream(spec)
    one_pass = DifferentialHarness(spec.region_bytes, seed=spec.seed)
    one_pass.replay(ops)
    want_state = one_pass.fingerprint(include_counters=True)
    want_records = one_pass.record_digest()
    for fraction in fractions:
        split = max(1, min(len(ops) - 1, int(len(ops) * fraction)))
        resumed = DifferentialHarness(spec.region_bytes, seed=spec.seed)
        resumed.replay(ops[:split])
        resumed.replay(ops[split:])
        if resumed.fingerprint(include_counters=True) != want_state:
            raise MetamorphicError(
                f"split at {split}/{len(ops)} changed the end state of "
                f"stream {spec.name!r}"
            )
        if resumed.record_digest() != want_records:
            raise MetamorphicError(
                f"split at {split}/{len(ops)} changed the observation records "
                f"of stream {spec.name!r}"
            )
    return {
        "relation": "split-resume",
        "stream": spec.name,
        "splits": len(fractions),
    }


def check_read_idempotence(spec: StreamSpec, samples: int = 16) -> Dict[str, object]:
    """Repeated reads of one line return identical plaintext."""
    ops = generate_stream(spec)
    harness = DifferentialHarness(spec.region_bytes, seed=spec.seed)
    harness.replay(ops)
    rng = random.Random(spec.seed ^ 0x1DE0)
    addrs = touched_addrs(ops)
    rng.shuffle(addrs)
    for addr in addrs[:samples]:
        data_before = dict(harness.oracle.data)
        first = harness.engine.read(addr, 64)
        harness.oracle.read(addr)
        second = harness.engine.read(addr, 64)
        harness.oracle.read(addr)
        if first != second:
            raise MetamorphicError(
                f"re-reading 0x{addr:x} in stream {spec.name!r} returned "
                "different plaintext"
            )
        if harness.oracle.data != data_before:
            raise MetamorphicError(
                f"reading 0x{addr:x} in stream {spec.name!r} mutated stored data"
            )
    return {
        "relation": "read-idempotence",
        "stream": spec.name,
        "samples": min(samples, len(addrs)),
    }
