"""Naive reference model of the multi-granular metadata layout.

Everything in this module is written to be *obviously* correct rather
than fast: plain loops over partitions and lines, no caches, no bit
tricks beyond single-bit tests, no shared code with the optimized
implementations in :mod:`repro.core`, :mod:`repro.tree` or
:mod:`repro.secure_memory`.  The only imports from the main tree are
the architectural constants (they are the paper's spec numbers, not
code under test).

The reference re-derives, independently:

* Eq. 1 MAC addressing with Fig. 9 compaction (:func:`ref_mac_index`,
  :func:`ref_mac_addr`) -- a literal address-order walk over the
  chunk's protection regions, one MAC per region;
* Eqs. 2-4 counter promotion (:func:`ref_num_parents`,
  :func:`ref_ancestor_index`, :meth:`RefGeometry.counter_slot`);
* tree geometry, metadata windows and the path to the root
  (:class:`RefGeometry`);
* Algorithm 1 detection (:func:`ref_detect_stream_partitions`) and the
  detection-merge rule (:func:`ref_merge_detection`);
* the access tracker (:class:`RefTracker`), the lazy-switching
  granularity table (:class:`RefTable`) and the Fig. 13 counter
  re-keying rules, composed into :class:`RefModel` -- a functional
  shadow of ``SecureMemory(policy="multigranular")``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.common.constants import (
    ACCESS_TRACKER_ENTRIES,
    CACHELINE_BYTES,
    CHUNK_BYTES,
    GRANULARITIES,
    LINES_PER_CHUNK,
    LINES_PER_PARTITION,
    MAC_BYTES,
    PARTITIONS_PER_CHUNK,
    TRACKER_LIFETIME_CYCLES,
    TREE_ARITY,
)

#: 512B partitions per aligned 4KB group.
PARTS_PER_GROUP = GRANULARITIES[2] // GRANULARITIES[1]


# ---------------------------------------------------------------------------
# Eqs. 2-3: counter promotion
# ---------------------------------------------------------------------------


def ref_granularity_level(granularity: int) -> int:
    """Level index of a supported granularity, by repeated multiplication."""
    size = CACHELINE_BYTES
    level = 0
    while size < granularity:
        size *= TREE_ARITY
        level += 1
    if size != granularity or granularity not in GRANULARITIES:
        raise ValueError(f"unsupported granularity {granularity}")
    return level


def ref_num_parents(granularity: int, arity: int = TREE_ARITY) -> int:
    """Eq. 2 without logarithms: count the multiplications."""
    size = CACHELINE_BYTES
    steps = 0
    while size < granularity:
        size *= arity
        steps += 1
    if size != granularity:
        raise ValueError(f"{granularity} is not {CACHELINE_BYTES} * {arity}^k")
    return steps


def ref_ancestor_index(leaf_index: int, parents: int, arity: int = TREE_ARITY) -> int:
    """Eq. 3: one parent step at a time."""
    index = leaf_index
    for _ in range(parents):
        index = index // arity
    return index


# ---------------------------------------------------------------------------
# Granularity resolution (Sec. 4.4 encoding)
# ---------------------------------------------------------------------------


def _partition_of(addr: int) -> int:
    return (addr % CHUNK_BYTES) // GRANULARITIES[1]


def ref_resolve_granularity(
    bits: int, addr: int, max_granularity: int = GRANULARITIES[3]
) -> int:
    """Effective granularity of ``addr`` under bitmap ``bits``, naively.

    Checks coarsest-first, testing every member partition bit with a
    loop instead of mask arithmetic.
    """
    part = _partition_of(addr)
    if max_granularity >= GRANULARITIES[3] and all(
        bits >> p & 1 for p in range(PARTITIONS_PER_CHUNK)
    ):
        return GRANULARITIES[3]
    group = part // PARTS_PER_GROUP
    members = range(group * PARTS_PER_GROUP, (group + 1) * PARTS_PER_GROUP)
    if max_granularity >= GRANULARITIES[2] and all(bits >> p & 1 for p in members):
        return GRANULARITIES[2]
    if max_granularity >= GRANULARITIES[1] and bits >> part & 1:
        return GRANULARITIES[1]
    return GRANULARITIES[0]


def ref_quantize_bits(bits: int, min_coarse: int) -> int:
    """Drop stream marks finer than ``min_coarse``, partition by partition."""
    if min_coarse <= GRANULARITIES[1]:
        return bits
    if min_coarse == GRANULARITIES[2]:
        out = 0
        for group in range(PARTITIONS_PER_CHUNK // PARTS_PER_GROUP):
            members = range(group * PARTS_PER_GROUP, (group + 1) * PARTS_PER_GROUP)
            if all(bits >> p & 1 for p in members):
                for p in members:
                    out |= 1 << p
        return out
    if min_coarse == GRANULARITIES[3]:
        if all(bits >> p & 1 for p in range(PARTITIONS_PER_CHUNK)):
            return bits
        return 0
    raise ValueError(f"unsupported min_coarse {min_coarse}")


def ref_region_spans(
    bits: int, max_granularity: int = GRANULARITIES[3]
) -> List[Tuple[int, int]]:
    """(offset, granularity) protection regions of one chunk, in order.

    A fine region spans a single 64B line, so the list enumerates one
    entry per MAC -- which is exactly what makes :func:`ref_mac_index`
    trivial.
    """
    spans: List[Tuple[int, int]] = []
    off = 0
    while off < CHUNK_BYTES:
        granularity = ref_resolve_granularity(bits, off, max_granularity)
        spans.append((off, granularity))
        off += granularity
    return spans


# ---------------------------------------------------------------------------
# Eq. 1 + Fig. 9: compacted MAC addressing
# ---------------------------------------------------------------------------


def ref_mac_index(
    bits: int, addr: int, max_granularity: int = GRANULARITIES[3]
) -> int:
    """Compacted in-chunk MAC index of ``addr``: one MAC per region.

    Walks the chunk's protection regions in address order and counts
    the regions before the one containing ``addr`` (Fig. 9: merged
    MACs fill the front of the chunk's MAC space without gaps).
    """
    offset = addr % CHUNK_BYTES
    for index, (off, granularity) in enumerate(
        ref_region_spans(bits, max_granularity)
    ):
        if off <= offset < off + granularity:
            return index
    raise AssertionError("address outside its own chunk")  # pragma: no cover


def ref_macs_per_chunk(bits: int, max_granularity: int = GRANULARITIES[3]) -> int:
    """Post-merge MAC count of a chunk: simply the number of regions."""
    return len(ref_region_spans(bits, max_granularity))


def ref_mac_addr(
    region_bytes: int,
    bits: int,
    addr: int,
    max_granularity: int = GRANULARITIES[3],
) -> int:
    """Eq. 1: chunk MAC window base + compacted index x 8B.

    Every chunk owns a fixed fine-layout-sized MAC window (Sec. 4.3),
    so only the in-chunk index depends on the bitmap.
    """
    mac_base = region_bytes
    chunk = addr // CHUNK_BYTES
    window = chunk * LINES_PER_CHUNK * MAC_BYTES
    index = ref_mac_index(bits, addr, max_granularity)
    return mac_base + window + index * MAC_BYTES


# ---------------------------------------------------------------------------
# Algorithm 1 detection + merge rule
# ---------------------------------------------------------------------------


def ref_detect_stream_partitions(access_bits: int) -> int:
    """Algorithm 1: a partition is a stream iff every line bit is set."""
    result = 0
    for part in range(PARTITIONS_PER_CHUNK):
        lines = [
            access_bits >> (part * LINES_PER_PARTITION + i) & 1
            for i in range(LINES_PER_PARTITION)
        ]
        if all(lines):
            result |= 1 << part
    return result


def ref_merge_detection(
    previous_bits: int, access_bits: int, censored: bool = False
) -> int:
    """Fold one observation window into the previous ``stream_part``.

    Fully covered partitions promote; touched-but-partial partitions
    demote (unless the window was cut short by a capacity eviction, in
    which case demotion evidence is unreliable); untouched partitions
    keep their previous classification.
    """
    out = previous_bits
    for part in range(PARTITIONS_PER_CHUNK):
        lines = [
            access_bits >> (part * LINES_PER_PARTITION + i) & 1
            for i in range(LINES_PER_PARTITION)
        ]
        if all(lines):
            out |= 1 << part
        elif any(lines) and not censored:
            out &= ~(1 << part)
    return out


# ---------------------------------------------------------------------------
# Tree geometry and metadata windows
# ---------------------------------------------------------------------------


class RefGeometry:
    """Naive re-derivation of :class:`repro.tree.geometry.TreeGeometry`.

    Level counts come from repeated ceiling division, node addresses
    from a linear level-major layout, counter slots from Eq. 3's
    region arithmetic.
    """

    def __init__(self, region_bytes: int, arity: int = TREE_ARITY) -> None:
        self.region_bytes = region_bytes
        self.arity = arity
        counts: List[int] = []
        nodes = -(-(region_bytes // CACHELINE_BYTES) // arity)
        while True:
            counts.append(nodes)
            if nodes == 1:
                break
            nodes = -(-nodes // arity)
        self.level_counts = tuple(counts)
        offsets: List[int] = []
        total = 0
        for count in counts:
            offsets.append(total)
            total += count
        self.level_offsets = tuple(offsets)
        self.mac_base = region_bytes
        self.tree_base = self.mac_base + (region_bytes // CACHELINE_BYTES) * MAC_BYTES
        self.table_base = self.tree_base + total * CACHELINE_BYTES

    @property
    def num_levels(self) -> int:
        return len(self.level_counts)

    @property
    def root_level(self) -> int:
        return self.num_levels - 1

    def span_of_level(self, level: int) -> int:
        span = CACHELINE_BYTES
        for _ in range(level + 1):
            span *= self.arity
        return span

    def counter_span(self, level: int) -> int:
        """Bytes covered by one counter at ``level`` (Eq. 3 divisor)."""
        span = CACHELINE_BYTES
        for _ in range(level):
            span *= self.arity
        return span

    def counter_slot(self, addr: int, level: int) -> Tuple[int, int]:
        region = addr // self.counter_span(level)
        return region // self.arity, region % self.arity

    def node_addr(self, level: int, node_index: int) -> int:
        return self.tree_base + (self.level_offsets[level] + node_index) * (
            CACHELINE_BYTES
        )

    def counter_region_index(self, addr: int, level: int) -> int:
        """Global index of the level-``level`` counter region of ``addr``."""
        return addr // self.counter_span(level)

    def path_to_root(self, addr: int, start_level: int = 0) -> List[Tuple[int, int]]:
        """(level, node index) pairs from ``start_level`` to the root."""
        node = addr // self.span_of_level(start_level)
        path: List[Tuple[int, int]] = []
        for level in range(start_level, self.num_levels):
            path.append((level, node))
            node = node // self.arity
        return path

    def classify(self, addr: int) -> str:
        """Which metadata window a simulated address falls into."""
        if 0 <= addr < self.region_bytes:
            return "data"
        if self.mac_base <= addr < self.tree_base:
            return "mac"
        if self.tree_base <= addr < self.table_base:
            return "tree"
        # 16 bytes per chunk: the current + next partition bitmaps.
        table_bytes = -(-self.region_bytes // CHUNK_BYTES) * 16
        if self.table_base <= addr < self.table_base + table_bytes:
            return "table"
        return "invalid"


# ---------------------------------------------------------------------------
# Access tracker (Fig. 12)
# ---------------------------------------------------------------------------


@dataclass
class RefTrackedChunk:
    """One tracked chunk: the set of touched in-chunk line indices."""

    chunk: int
    birth: int
    lines: set = field(default_factory=set)

    @property
    def access_bits(self) -> int:
        bits = 0
        for line in self.lines:
            bits |= 1 << line
        return bits


class RefTracker:
    """Plain-list LRU tracker: scan everything, cache nothing.

    The optimized :class:`repro.core.tracker.AccessTracker` keeps a
    next-expiry deadline so it can skip the expiry sweep; the reference
    scans every entry on every observe.  Both must evict the same
    entries at the same observes, in the same order: expired entries
    first (least recent first), then at most one capacity victim, then
    the touched entry itself if the access completed its chunk.
    """

    def __init__(
        self,
        entries: int = ACCESS_TRACKER_ENTRIES,
        lifetime: int = TRACKER_LIFETIME_CYCLES,
    ) -> None:
        self.capacity = entries
        self.lifetime = lifetime
        self._entries: List[RefTrackedChunk] = []  # least recently used first

    def observe(self, addr: int, cycle: int) -> List[Tuple[RefTrackedChunk, str]]:
        evicted: List[Tuple[RefTrackedChunk, str]] = []
        for entry in list(self._entries):
            if cycle - entry.birth > self.lifetime:
                self._entries.remove(entry)
                evicted.append((entry, "expired"))

        chunk = addr // CHUNK_BYTES
        entry = None
        for candidate in self._entries:
            if candidate.chunk == chunk:
                entry = candidate
                break
        if entry is None:
            if len(self._entries) >= self.capacity:
                evicted.append((self._entries.pop(0), "capacity"))
            entry = RefTrackedChunk(chunk=chunk, birth=cycle)
            self._entries.append(entry)
        else:
            self._entries.remove(entry)
            self._entries.append(entry)

        entry.lines.add((addr % CHUNK_BYTES) // CACHELINE_BYTES)
        if len(entry.lines) >= LINES_PER_CHUNK:
            self._entries.remove(entry)
            evicted.append((entry, "full"))
        return evicted


# ---------------------------------------------------------------------------
# Granularity table with lazy switching (Sec. 4.4)
# ---------------------------------------------------------------------------


@dataclass
class RefTableEntry:
    current: int = 0
    next: int = 0
    written: bool = False
    last_access_write: bool = False
    demote_hold: int = 0


@dataclass
class RefSwitch:
    """One lazy switch the reference table decided to apply."""

    addr: int
    old_granularity: int
    new_granularity: int
    old_bits: int
    new_bits: int

    @property
    def scale_up(self) -> bool:
        return self.new_granularity > self.old_granularity


class RefTable:
    """Two-bitmap granularity table, switched partition by partition."""

    def __init__(
        self,
        min_coarse: int = GRANULARITIES[1],
        max_granularity: int = GRANULARITIES[3],
    ) -> None:
        self.min_coarse = min_coarse
        self.max_granularity = max_granularity
        self._entries: Dict[int, RefTableEntry] = {}

    def entry(self, chunk: int) -> RefTableEntry:
        if chunk not in self._entries:
            self._entries[chunk] = RefTableEntry()
        return self._entries[chunk]

    def record_detection(self, chunk: int, bits: int) -> None:
        entry = self.entry(chunk)
        bits = ref_quantize_bits(bits, self.min_coarse)
        if entry.demote_hold > 0:
            entry.demote_hold -= 1
            bits &= entry.next
        entry.next = bits

    def resolve(self, addr: int, is_write: bool) -> Tuple[int, Optional[RefSwitch]]:
        entry = self.entry(addr // CHUNK_BYTES)
        old_gran = ref_resolve_granularity(entry.current, addr, self.max_granularity)
        new_gran = ref_resolve_granularity(entry.next, addr, self.max_granularity)

        switch: Optional[RefSwitch] = None
        if new_gran != old_gran:
            old_bits = entry.current
            span = max(old_gran, new_gran)
            self._copy_region_bits(entry, addr, span)
            switch = RefSwitch(
                addr=addr,
                old_granularity=old_gran,
                new_granularity=new_gran,
                old_bits=old_bits,
                new_bits=entry.current,
            )
            granularity = new_gran
        else:
            granularity = old_gran

        entry.last_access_write = is_write
        if is_write:
            entry.written = True
        return granularity, switch

    def _copy_region_bits(self, entry: RefTableEntry, addr: int, span: int) -> None:
        """Move ``next`` into ``current`` for the touched span only."""
        if span >= CHUNK_BYTES:
            entry.current = entry.next
            return
        offset = addr % CHUNK_BYTES
        region_start = (offset // span) * span
        first_part = region_start // GRANULARITIES[1]
        parts = max(1, span // GRANULARITIES[1])
        for part in range(first_part, first_part + parts):
            if entry.next >> part & 1:
                entry.current |= 1 << part
            else:
                entry.current &= ~(1 << part)


# ---------------------------------------------------------------------------
# The full functional shadow model
# ---------------------------------------------------------------------------

_ZERO_LINE = bytes(CACHELINE_BYTES)


class RefModel:
    """Functional shadow of ``SecureMemory(policy="multigranular")``.

    Tracks plaintext contents, the two granularity bitmaps, and the
    per-region counter *values* (Fig. 13 re-keying rules), without any
    cryptography: the differential harness compares these predictions
    against the real engine's observable state after every request.

    Assumes clean streams (no tampering, so no quarantine or demotion
    recovery paths) and non-overflowing counters; the fault-injection
    campaign covers the adversarial paths separately.
    """

    def __init__(
        self,
        region_bytes: int,
        tracker_entries: int = ACCESS_TRACKER_ENTRIES,
        tracker_lifetime: int = TRACKER_LIFETIME_CYCLES,
    ) -> None:
        self.geometry = RefGeometry(region_bytes)
        self.tracker = RefTracker(tracker_entries, tracker_lifetime)
        self.table = RefTable()
        self.data: Dict[int, bytes] = {}
        self.counters: Dict[Tuple[int, int], int] = {}
        self.cycle = 0
        self.switches = 0
        self.last_granularity = GRANULARITIES[0]

    # -- clock ----------------------------------------------------------

    def advance(self, cycles: int) -> None:
        self.cycle += cycles

    # -- counters -------------------------------------------------------

    def counter_of(self, addr: int, level: int) -> int:
        region = self.geometry.counter_region_index(addr, level)
        return self.counters.get((level, region), 0)

    def _set_counter(self, addr: int, level: int, value: int) -> None:
        region = self.geometry.counter_region_index(addr, level)
        self.counters[(level, region)] = value

    # -- the per-line pipeline (mirrors SecureMemory._resolve) ----------

    def _resolve(self, addr: int, is_write: bool) -> int:
        for entry, reason in self.tracker.observe(addr, self.cycle):
            merged = ref_merge_detection(
                self.table.entry(entry.chunk).next,
                entry.access_bits,
                censored=reason == "capacity",
            )
            self.table.record_detection(entry.chunk, merged)
        self.cycle += 1
        granularity, switch = self.table.resolve(addr, is_write)
        if switch is not None:
            self.switches += 1
            self._apply_switch_counters(switch)
        self.last_granularity = granularity
        return granularity

    def _apply_switch_counters(self, switch: RefSwitch) -> None:
        """Fig. 13: scale-up seals at ``max + 1``, scale-down retains."""
        span = max(switch.old_granularity, switch.new_granularity)
        span_base = switch.addr - switch.addr % span

        shared = 0
        for sub, sub_g in self._subregions(span_base, span, switch.old_bits):
            value = self.counter_of(sub, ref_granularity_level(sub_g))
            if value > shared:
                shared = value
        if switch.scale_up:
            shared += 1

        for sub, sub_g in self._subregions(span_base, span, switch.new_bits):
            self._set_counter(sub, ref_granularity_level(sub_g), shared)

    def _subregions(self, base: int, span: int, bits: int) -> List[Tuple[int, int]]:
        out: List[Tuple[int, int]] = []
        off = 0
        while off < span:
            sub = base + off
            sub_g = min(ref_resolve_granularity(bits, sub), span)
            out.append((sub, sub_g))
            off += sub_g
        return out

    # -- public data interface -----------------------------------------

    def write(self, addr: int, payload: bytes) -> None:
        granularity = self._resolve(addr, is_write=True)
        level = ref_granularity_level(granularity)
        region_base = addr - addr % granularity
        self._set_counter(region_base, level, self.counter_of(region_base, level) + 1)
        self.data[addr] = payload.ljust(CACHELINE_BYTES, b"\0")

    def read(self, addr: int) -> bytes:
        self._resolve(addr, is_write=False)
        return self.data.get(addr, _ZERO_LINE)

    # -- observables ----------------------------------------------------

    def bits_of(self, addr: int) -> Tuple[int, int]:
        entry = self.table.entry(addr // CHUNK_BYTES)
        return entry.current, entry.next

    def granularity_of(self, addr: int) -> int:
        entry = self.table.entry(addr // CHUNK_BYTES)
        return ref_resolve_granularity(entry.current, addr, self.table.max_granularity)
