"""Golden-corpus storage for the differential harness.

A corpus file (``tests/golden/corpus_quick.json`` /
``corpus_deep.json``) pins, per stream, the sha256 digest of the
harness's per-op observation records and of its final functional
state.  The corpus is fully deterministic -- streams come from
``random.Random(seed)``, keys from ``KeySet.from_seed`` -- so CI can
regenerate it from scratch (``scripts/refresh_goldens.py``) and demand
the committed bytes match.

A digest change is a *semantic* change to the metadata layout or the
detection/switching pipeline.  That is sometimes intended (a real
behaviour fix); the workflow is then to re-run the refresh script and
commit the new corpus together with the change, which makes layout
drift reviewable instead of silent.
"""

from __future__ import annotations

import json
import os
from typing import Dict, List

CORPUS_SCHEMA = "repro-check/v1"

#: Repo-relative default location of the committed corpus files.
DEFAULT_GOLDEN_DIR = os.path.join("tests", "golden")


def corpus_digest(harness) -> Dict[str, str]:
    """Stable digests of one replayed harness."""
    return {
        "records": harness.record_digest(),
        "state": harness.fingerprint(include_counters=True),
    }


def corpus_path(golden_dir: str, tier: str) -> str:
    return os.path.join(golden_dir, f"corpus_{tier}.json")


def make_corpus(tier: str, specs: List, digests: List[Dict[str, str]]) -> dict:
    """Assemble the canonical corpus document for ``tier``."""
    return {
        "schema": CORPUS_SCHEMA,
        "tier": tier,
        "streams": [
            {"spec": spec.to_dict(), **digest}
            for spec, digest in zip(specs, digests)
        ],
    }


def write_corpus(path: str, corpus: dict) -> None:
    """Write ``corpus`` byte-deterministically (sorted keys, LF, EOF \\n)."""
    os.makedirs(os.path.dirname(path) or ".", exist_ok=True)
    blob = json.dumps(corpus, sort_keys=True, indent=2) + "\n"
    with open(path, "w", encoding="utf-8", newline="\n") as handle:
        handle.write(blob)


def load_corpus(path: str) -> dict:
    """Load and schema-check one corpus file."""
    with open(path, "r", encoding="utf-8") as handle:
        corpus = json.load(handle)
    if not isinstance(corpus, dict):
        raise ValueError(f"{path}: corpus must be a JSON object")
    schema = corpus.get("schema")
    if schema != CORPUS_SCHEMA:
        raise ValueError(f"{path}: schema {schema!r} does not match {CORPUS_SCHEMA!r}")
    if not isinstance(corpus.get("streams"), list):
        raise ValueError(f"{path}: corpus is missing its streams list")
    return corpus


def diff_corpus(expected: dict, actual: dict) -> List[str]:
    """Human-readable differences between two corpus documents."""
    problems: List[str] = []
    want = {s["spec"]["name"]: s for s in expected.get("streams", [])}
    have = {s["spec"]["name"]: s for s in actual.get("streams", [])}
    for name in sorted(set(want) | set(have)):
        if name not in have:
            problems.append(f"stream {name!r}: missing from regenerated corpus")
            continue
        if name not in want:
            problems.append(f"stream {name!r}: not in committed corpus")
            continue
        for key in ("records", "state"):
            if want[name].get(key) != have[name].get(key):
                problems.append(
                    f"stream {name!r}: {key} digest changed "
                    f"({str(want[name].get(key))[:16]} -> "
                    f"{str(have[name].get(key))[:16]})"
                )
    return problems
