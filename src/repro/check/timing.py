"""Timing-layer (scheme) invariants against the naive geometry.

The functional engine is covered by the differential harness; this
module aims the same oracle at the *timing* model
(:class:`repro.schemes.multigran.MultiGranularScheme`).  A recording
subclass intercepts every metadata-cache fill and, per request,
validates the addresses the scheme actually touched against the
reference geometry:

* counter fills walk node addresses that all lie on the naive
  root path of the request address, starting exactly at the promoted
  level's node (Eqs. 2-4);
* the single MAC fill hits exactly the naive compacted MAC line
  (Eq. 1 under the live bitmap);
* granularity-table fills stay inside the table window;
* every metadata address classifies into its own window, never into
  data or another metadata region.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

from repro.check import oracle as ref
from repro.check.streams import Op
from repro.common.config import SoCConfig
from repro.common.constants import CACHELINE_BYTES, granularity_level
from repro.common.types import AccessType, MemoryRequest
from repro.mem.channel import MemoryChannel
from repro.schemes.multigran import MultiGranularScheme


class TimingInvariantError(AssertionError):
    """A scheme touched a metadata address the oracle cannot explain."""


class RecordingScheme(MultiGranularScheme):
    """MultiGranularScheme that logs every metadata-cache fill."""

    def __init__(self, *args, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        self.fills: List[Tuple[str, int, bool]] = []

    def _cache_fill(self, cache, addr, write, cycle, channel, kind):
        self.fills.append((kind.value, addr, write))
        return super()._cache_fill(cache, addr, write, cycle, channel, kind)


@dataclass
class TimingCheckResult:
    requests: int
    counter_fills: int
    mac_fills: int
    table_fills: int


def check_timing_invariants(
    ops: Sequence[Op], region_bytes: int, label: str = "stream"
) -> TimingCheckResult:
    """Replay ``ops`` through a recording scheme, validating every fill."""
    config = SoCConfig()
    scheme = RecordingScheme(config, region_bytes=region_bytes)
    channel = MemoryChannel(config.memory)
    geometry = ref.RefGeometry(region_bytes)
    root_level = geometry.root_level

    counter_fills = mac_fills = table_fills = requests = 0
    cycle = 0.0
    for index, op in enumerate(ops):
        if op.kind == "advance":
            cycle += op.cycles
            continue
        req = MemoryRequest(
            cycle=int(cycle),
            addr=op.addr,
            size=CACHELINE_BYTES,
            access=AccessType.WRITE if op.kind == "write" else AccessType.READ,
        )
        scheme.fills.clear()
        scheme.process(req, cycle, channel)
        cycle += 1.0
        requests += 1

        def bail(message: str) -> None:
            raise TimingInvariantError(
                f"{label}: request #{index} ({op.kind} addr=0x{op.addr:x}): "
                + message
            )

        granularity = scheme.table.peek_granularity(op.addr)
        level = granularity_level(granularity)
        path_addrs = [
            geometry.node_addr(lvl, node)
            for lvl, node in geometry.path_to_root(op.addr)
            if lvl < root_level
        ]
        node, _slot = geometry.counter_slot(op.addr, level)
        expected_first = geometry.node_addr(level, node) if level < root_level else None

        counters = [addr for kind, addr, _ in scheme.fills if kind == "counter"]
        macs = [addr for kind, addr, _ in scheme.fills if kind == "mac"]
        tables = [addr for kind, addr, _ in scheme.fills if kind == "gran_table"]
        counter_fills += len(counters)
        mac_fills += len(macs)
        table_fills += len(tables)

        for addr in counters:
            if addr not in path_addrs:
                bail(
                    f"counter fill 0x{addr:x} is not on the naive root path "
                    f"{[hex(a) for a in path_addrs]}"
                )
            if geometry.classify(addr) != "tree":
                bail(f"counter fill 0x{addr:x} is outside the tree window")
        if counters and expected_first is not None and counters[0] != expected_first:
            bail(
                f"counter walk started at 0x{counters[0]:x}, naive start for "
                f"granularity {granularity} is 0x{expected_first:x}"
            )

        bits = scheme.table.entry(op.addr).current
        want_mac = ref.ref_mac_addr(
            region_bytes, bits, op.addr, scheme.table.max_granularity
        )
        want_mac_line = want_mac - want_mac % CACHELINE_BYTES
        if len(macs) != 1:
            bail(f"expected exactly one MAC fill, saw {len(macs)}")
        if macs[0] != want_mac_line:
            bail(
                f"MAC fill 0x{macs[0]:x} differs from naive compacted line "
                f"0x{want_mac_line:x} (bits=0x{bits:x})"
            )
        if geometry.classify(macs[0]) != "mac":
            bail(f"MAC fill 0x{macs[0]:x} is outside the MAC window")

        for addr in tables:
            if geometry.classify(addr) != "table":
                bail(f"table fill 0x{addr:x} is outside the table window")
            if addr % CACHELINE_BYTES:
                bail(f"table fill 0x{addr:x} is not line-aligned")

    scheme.finish(channel)
    return TimingCheckResult(requests, counter_fills, mac_fills, table_fills)
