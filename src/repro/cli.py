"""Command-line interface: ``python -m repro <command>``.

Commands:

* ``list``        -- enumerate workloads, scenarios and schemes;
* ``simulate``    -- run one scenario under chosen schemes
  (``--json`` emits the machine-readable ``repro-sim/v1`` payload);
* ``experiment``  -- regenerate a paper table/figure by id;
* ``faults``      -- run the fault-injection campaign against the
  functional security engine (exits non-zero on any silent
  corruption);
* ``trace``       -- record a structured event trace of one scenario
  (plus a functional fault slice) and dump it as JSONL;
* ``profile``     -- wall-time-per-stage and cProfile view of the
  simulator itself;
* ``bench``       -- write (and optionally check) a
  ``BENCH_<date>.json`` simulator-performance snapshot;
* ``check``       -- differential-oracle correctness harness: replay
  seeded streams through the engine and the naive reference model,
  diff every observable (``--quick`` for CI, ``--deep`` nightly);
* ``chaos``       -- execution-chaos harness: inject worker crashes,
  hangs, lost results and journal damage into supervised sweeps and
  campaigns, asserting payloads stay byte-identical to a clean run
  (``--mode fabric`` runs the multi-claimant lease-protocol story
  instead);
* ``fabric``      -- distributed campaign fabric plumbing: ``worker``
  joins a spooled work-queue as an extra claimant, ``status`` shows
  lease/commit progress, ``drain`` reclaims expired leases and
  finishes the queue serially (see ``docs/fabric.md``);
* ``gc``          -- prune old ``runs/<id>/`` directories and
  orphaned result-store blobs.

Fan-out commands (``simulate``, ``experiment``, ``report``, ``faults``)
accept the resilience flags ``--timeout``, ``--retries``, ``--run-id``,
``--resume`` and ``--runs-dir`` (see ``docs/resilience.md``);
``experiment`` and ``faults`` additionally take ``--workers N`` to
execute their fan-out through N fabric worker processes.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List, Optional

from repro.experiments import ALL_EXPERIMENTS
from repro.experiments.common import label
from repro.schemes.registry import SCHEME_NAMES
from repro.sim.parallel import default_jobs
from repro.sim.runner import run_scenario
from repro.sim.scenario import (
    REALWORLD_SCENARIOS,
    SELECTED_SCENARIOS,
    all_scenarios,
    make_scenario,
)
from repro.workloads.registry import WORKLOADS


def _jobs(args: argparse.Namespace) -> int:
    """Effective worker count: ``--jobs``, else REPRO_JOBS/CPU count."""
    return args.jobs if args.jobs is not None else default_jobs()


def _supervisor(args: argparse.Namespace):
    """Build the run's Supervisor from the resilience flags (or None).

    ``None`` leaves the ambient default in force (supervised, no
    journal; ``REPRO_EXEC=plain`` opts out entirely).  Any explicit
    flag -- ``--run-id``, ``--resume``, ``--timeout``, ``--retries``,
    ``--workers`` -- pins an explicit supervisor for the whole command;
    ``--run-id``/``--resume`` turn on the checkpoint journal under
    ``--runs-dir`` (see docs/resilience.md), and ``--workers N`` routes
    every fan-out through the distributed fabric with N leased worker
    processes (see docs/fabric.md).
    """
    from repro.sim.resilient import ResiliencePolicy, Supervisor

    resume_id = getattr(args, "resume", None)
    run_id = resume_id or getattr(args, "run_id", None)
    timeout = getattr(args, "timeout", None)
    retries = getattr(args, "retries", None)
    workers = getattr(args, "workers", None)
    if (
        run_id is None and timeout is None and retries is None
        and workers is None
    ):
        return None
    policy = ResiliencePolicy(
        timeout_seconds=timeout,
        max_retries=retries if retries is not None else 3,
    )
    return Supervisor(
        policy=policy,
        run_id=run_id,
        resume=resume_id is not None,
        runs_dir=getattr(args, "runs_dir", None),
        fabric_workers=workers,
        lease_ttl=getattr(args, "lease_ttl", None),
    )


def _supervised(args: argparse.Namespace):
    """Context manager activating this command's supervisor (if any)."""
    from repro.sim.resilient import supervision

    supervisor = _supervisor(args)
    if supervisor is not None and supervisor.fabric_workers is not None:
        print(
            f"[fabric] run {supervisor.run_id}: "
            f"{supervisor.fabric_workers} workers, "
            f"store {supervisor.store_dir()}",
            file=sys.stderr,
        )
    elif supervisor is not None and supervisor.journaling:
        print(
            f"[resilient] run {supervisor.run_id} "
            f"(journal: {supervisor.run_dir()})",
            file=sys.stderr,
        )
    return supervision(supervisor)


def _engine_config(args: argparse.Namespace):
    """SoCConfig honoring the command's ``--engine`` flag (None = default)."""
    engine = getattr(args, "engine", "scalar")
    if engine == "scalar":
        return None
    from repro.common.config import SoCConfig

    return SoCConfig(sim_engine=engine)


def _find_scenario(name: str):
    for scenario in list(SELECTED_SCENARIOS) + list(REALWORLD_SCENARIOS):
        if scenario.name == name:
            return scenario
    for scenario in all_scenarios():
        if scenario.name == name:
            return scenario
    raise SystemExit(f"unknown scenario {name!r}; try `repro list scenarios`")


def cmd_list(args: argparse.Namespace) -> int:
    """List workloads, scenarios, schemes and/or experiments."""
    what = args.what
    if what in ("workloads", "all"):
        print("# workloads (Table 4)")
        for name, spec in sorted(WORKLOADS.items()):
            print(
                f"  {name:8s} {spec.kind.value:4s} "
                f"pattern={spec.pattern_label:5s} traffic={spec.traffic_label}"
            )
    if what in ("scenarios", "all"):
        print("# selected scenarios (Sec. 5.4)")
        for scenario in SELECTED_SCENARIOS:
            print(f"  {scenario.name:4s} {'+'.join(scenario.workload_names)}")
        print("# real-world pipelines (Sec. 5.5)")
        for scenario in REALWORLD_SCENARIOS:
            print(f"  {scenario.name:10s} {' -> '.join(scenario.workload_names)}")
        print(f"# full sweep: {len(all_scenarios())} scenarios (cpu+gpu+npu+npu)")
    if what in ("schemes", "all"):
        print("# schemes (Table 5)")
        for name in SCHEME_NAMES:
            print(f"  {name:28s} {label(name)}")
    if what in ("experiments", "all"):
        print("# experiments (paper artifacts)")
        for key, module in ALL_EXPERIMENTS.items():
            note = getattr(module, "PAPER_NOTE", "").split(";")[0]
            print(f"  {key:14s} {note}")
    return 0


def cmd_simulate(args: argparse.Namespace) -> int:
    """Simulate one scenario under the requested schemes."""
    if args.workloads:
        names = args.workloads.split("+")
        if len(names) != 4:
            raise SystemExit("--workloads needs cpu+gpu+npu+npu")
        scenario = make_scenario("custom", *names)
    else:
        scenario = _find_scenario(args.scenario)

    schemes = ["unsecure"] + [
        s for s in args.schemes.split(",") if s != "unsecure"
    ]
    with _supervised(args):
        runs = run_scenario(
            scenario, schemes, config=_engine_config(args),
            duration_cycles=args.duration, seed=args.seed,
            jobs=_jobs(args),
        )
    base = runs["unsecure"]
    if args.json:
        from repro.obs.bench import sim_payload

        payload = sim_payload(
            scenario, runs, args.duration, args.seed, baseline="unsecure"
        )
        print(json.dumps(payload, indent=2, sort_keys=True))
        return 0
    print(f"scenario {scenario.name}: {'+'.join(scenario.workload_names)}")
    print(f"{'scheme':28s} {'norm exec':>9s} {'traffic MB':>10s} {'misses':>8s}")
    for name in schemes:
        run = runs[name]
        print(
            f"{label(name):28s} "
            f"{run.mean_normalized_exec_time(base):9.3f} "
            f"{run.total_traffic_bytes / 1e6:10.2f} "
            f"{run.security_cache_misses:8d}"
        )
    return 0


def cmd_experiment(args: argparse.Namespace) -> int:
    """Regenerate one paper artifact and print its table."""
    try:
        module = ALL_EXPERIMENTS[args.id]
    except KeyError:
        raise SystemExit(
            f"unknown experiment {args.id!r}; known: {sorted(ALL_EXPERIMENTS)}"
        )
    from repro.experiments.report import PARALLEL_EXPERIMENTS

    kwargs = {}
    if args.duration is not None:
        kwargs["duration_cycles"] = args.duration
    if args.sample is not None and args.id in (
        "fig15", "fig16", "fig17", "fig18",
    ):
        kwargs["sample"] = args.sample
    if args.id in PARALLEL_EXPERIMENTS:
        kwargs["jobs"] = _jobs(args)
    with _supervised(args):
        result = module.run(**kwargs)
    if isinstance(result, dict):  # fig19 panels
        for panel in result.values():
            print(panel.format_table())
            print()
    else:
        print(result.format_table())
    if args.plot and args.id in ("fig15", "fig17"):
        from repro.experiments import sweep
        from repro.experiments.common import default_sweep_sample
        from repro.experiments.plotting import ascii_cdf

        schemes = module.SCHEMES
        results = sweep.sweep_results(
            kwargs.get("sample") or default_sweep_sample(),
            kwargs.get("duration_cycles"),
        )
        series = {
            name: sweep.normalized_exec_times(results, name)
            for name in schemes
        }
        print()
        print(ascii_cdf(series))
    return 0


def cmd_report(args: argparse.Namespace) -> int:
    """Regenerate every artifact into one markdown report."""
    from repro.experiments.report import generate_report

    def progress(key: str) -> None:
        print(f"[report] running {key} ...", file=sys.stderr)

    with _supervised(args):
        report = generate_report(
            duration_cycles=args.duration,
            sample=args.sample,
            seed=args.seed,
            progress=progress,
            jobs=_jobs(args),
        )
    if args.output:
        with open(args.output, "w", encoding="utf-8") as handle:
            handle.write(report)
        print(f"wrote {args.output}")
    else:
        print(report)
    return 0


def cmd_faults(args: argparse.Namespace) -> int:
    """Run the fault-injection campaign; fail on silent corruption."""
    from repro.faults.campaign import CampaignConfig, run_campaign
    from repro.secure_memory.failure import FAILURE_MODES

    config = CampaignConfig(
        seed=args.seed,
        trials=1 if args.smoke else args.trials,
        attacks=tuple(args.attacks.split(",")) if args.attacks else (),
        policies=tuple(args.policies.split(",")),
        failure_modes=(
            tuple(args.modes.split(",")) if args.modes else FAILURE_MODES
        ),
    )
    with _supervised(args):
        result = run_campaign(config, jobs=_jobs(args))
    if args.json:
        with open(args.json, "w", encoding="utf-8") as handle:
            handle.write(result.to_json())
        print(f"wrote {args.json}", file=sys.stderr)
    print(result.format_table())
    if not result.clean:
        for cell in result.fatal_cells():
            print(
                f"FATAL: {cell.attack} policy={cell.policy} "
                f"mode={cell.failure_mode} granularity={cell.granularity}: "
                f"{'; '.join(cell.details)}",
                file=sys.stderr,
            )
        for cell in result.error_cells():
            print(
                f"ERROR: {cell.attack} policy={cell.policy} "
                f"mode={cell.failure_mode} granularity={cell.granularity}: "
                f"{cell.error}",
                file=sys.stderr,
            )
        return 1
    return 0


def cmd_chaos(args: argparse.Namespace) -> int:
    """Execution-chaos harness: fail unless payloads stay byte-identical."""
    from repro.faults.exec_chaos import run_chaos, run_fabric_chaos

    if args.mode == "daemon":
        from repro.service.chaos import run_daemon_chaos

        report = run_daemon_chaos(
            tenants=args.tenants,
            duration=args.duration,
            seed=args.seed,
            engines=args.engines,
            kills=args.kills,
            progress=lambda line: print(line, file=sys.stderr),
        )
        print(report.format())
        return 0 if report.passed else 1

    if args.mode == "fabric":
        report = run_fabric_chaos(
            seed=args.seed,
            crash_rate=args.crash_rate,
            workers=args.workers,
            runs_dir=args.runs_dir,
            echo=lambda line: print(line, file=sys.stderr),
        )
        print(report.format())
        return 0 if report.passed else 1

    report = run_chaos(
        sample=args.sample,
        duration=args.duration,
        seed=args.seed,
        crash_rate=args.crash_rate,
        lost_rate=args.lost_rate,
        timeout=args.timeout,
        schemes=args.schemes.split(","),
        jobs=_jobs(args),
        runs_dir=args.runs_dir,
        skip_sweep=args.skip_sweep,
        skip_campaign=args.skip_campaign,
        echo=lambda line: print(line, file=sys.stderr),
    )
    print(report.format())
    return 0 if report.passed else 1


def _fabric_store(args: argparse.Namespace, queue_root) -> "object":
    """Resolve the result store for a fabric verb.

    Defaults to the ``store/`` sibling of the queue's runs dir (the
    layout ``fabric_map`` spools: ``<runs-dir>/<run-id>/fabric/<q>``)
    unless ``--store`` pins it.
    """
    from pathlib import Path

    from repro.sim.fabric import ResultStore, default_store_dir

    if args.store is not None:
        return ResultStore(args.store)
    queue_root = Path(queue_root)
    if len(queue_root.resolve().parents) < 3:
        raise SystemExit("cannot infer the store from --queue; pass --store")
    return ResultStore(default_store_dir(queue_root.resolve().parents[2]))


def cmd_fabric(args: argparse.Namespace) -> int:
    """Fabric plumbing verbs: ``worker``, ``status``, ``drain``."""
    from pathlib import Path

    from repro.sim import fabric

    if args.verb == "worker":
        queue = fabric.LeaseQueue.attach(args.queue)
        store = _fabric_store(args, args.queue)
        import os
        import uuid

        worker_id = (
            args.worker_id or f"cli-{os.getpid()}-{uuid.uuid4().hex[:6]}"
        )
        print(f"[fabric] worker {worker_id} joining {queue.root}",
              file=sys.stderr)
        committed = fabric.run_worker(queue, store, worker_id)
        print(f"[fabric] worker {worker_id} done: {committed} committed",
              file=sys.stderr)
        return 0

    if args.verb == "drain":
        queue = fabric.LeaseQueue.attach(args.queue)
        store = _fabric_store(args, args.queue)
        freed = queue.drain_expired("drain")
        committed = fabric.run_worker(queue, store, "drain")
        print(
            f"[fabric] drained {queue.root}: {len(freed)} expired leases "
            f"reclaimed, {committed} tasks finished serially"
        )
        return 0

    # status
    from repro.sim.fabric import ResultStore, default_store_dir
    from repro.sim.resilient import default_runs_dir

    runs_dir = Path(args.runs_dir) if args.runs_dir else default_runs_dir()
    store = ResultStore(
        args.store if args.store is not None else default_store_dir(runs_dir)
    )
    run_dirs = (
        [runs_dir / args.run_id]
        if args.run_id
        else sorted(
            path for path in runs_dir.glob("*")
            if path.is_dir() and path.name != "store"
        )
    )
    statuses = []
    for run_dir in run_dirs:
        for queue in fabric.fabric_queues(run_dir):
            status = fabric.queue_status(queue, store)
            status["queue"] = f"{run_dir.name}/{status['queue']}"
            statuses.append(status)
    print(fabric.format_status(statuses))
    return 0


def cmd_gc(args: argparse.Namespace) -> int:
    """Prune old run directories and orphaned result-store blobs."""
    from repro.sim.resilient import default_runs_dir
    from repro.sim.store_gc import collect_garbage

    runs_dir = args.runs_dir if args.runs_dir else default_runs_dir()
    report = collect_garbage(
        runs_dir,
        keep=args.keep,
        store_max_age_seconds=args.store_max_age,
        dry_run=args.dry_run,
    )
    print(report.format())
    return 0


def cmd_trace(args: argparse.Namespace) -> int:
    """Record a structured event trace of one scenario run."""
    from repro.obs import ObsContext
    from repro.obs.export import summary_report, write_trace_jsonl
    from repro.obs.timeline import build_timeline, format_timeline

    scenario = _find_scenario(args.scenario)
    obs = ObsContext.enabled(capacity=args.capacity)
    runs = run_scenario(
        scenario,
        [args.scheme],
        duration_cycles=args.duration,
        seed=args.seed,
        obs_factory=lambda: obs,
    )
    run = runs[args.scheme]
    if not args.no_faults:
        # The timing layer never corrupts anything; a small functional
        # fault slice adds quarantine/heal/overflow events to the trace.
        from repro.faults.campaign import traced_fault_slice

        traced_fault_slice(obs, seed=args.seed)

    events = list(obs.tracer.events())
    out = args.output or f"trace_{scenario.name}_{args.scheme}.jsonl"
    count = write_trace_jsonl(
        events,
        out,
        extra={
            "scenario": scenario.name,
            "scheme": args.scheme,
            "seed": args.seed,
            "duration_cycles": args.duration,
            "dropped": obs.tracer.dropped,
        },
    )
    print(
        summary_report(
            obs.registry,
            tracer=obs.tracer,
            title=f"trace {scenario.name}/{args.scheme}",
        )
    )
    if args.timeline:
        print()
        print(format_timeline(build_timeline(run.trace, buckets=args.buckets)))
    print(f"\nwrote {count} events to {out} (dropped {obs.tracer.dropped})")
    return 0


def cmd_profile(args: argparse.Namespace) -> int:
    """Profile the simulator itself over one scenario."""
    from repro.obs.profiler import (
        format_stage_report,
        profile_scenario,
        profile_with_cprofile,
    )

    scenario = _find_scenario(args.scenario)
    schemes = args.schemes.split(",")
    config = _engine_config(args)
    if args.no_cprofile:
        _, registry = profile_scenario(
            scenario, schemes, args.duration, args.seed, config
        )
        table = None
    else:
        _, registry, table = profile_with_cprofile(
            scenario, schemes, args.duration, args.seed, config, top=args.top
        )
    print(f"# stage wall time: {scenario.name} ({', '.join(schemes)})")
    print(format_stage_report(registry))
    if table is not None:
        print()
        print(table)
    return 0


def cmd_bench(args: argparse.Namespace) -> int:
    """Write (and optionally regression-check) a bench snapshot."""
    from repro.obs import bench

    scenario = _find_scenario(args.scenario)
    schemes = args.schemes.split(",")
    tiers = ("scalar", "fast") if args.engine == "both" else (args.engine,)
    wall_by_engine: dict = {}
    sweep_by_engine: dict = {}
    runs = None
    for tier in tiers:
        tier_runs, wall_by_engine[tier] = bench.measure(
            scenario,
            schemes,
            duration_cycles=args.duration,
            seed=args.seed,
            repeat=args.repeat,
            engine=tier,
        )
        if runs is None:
            runs = tier_runs  # both tiers are bit-identical
        if not args.no_sweep:
            sweep_by_engine[tier] = bench.measure_sweep(
                sample=args.sweep_sample or bench.SWEEP_SAMPLE,
                duration_cycles=args.sweep_duration or bench.SWEEP_DURATION,
                seed=args.seed,
                jobs=_jobs(args),
                repeat=args.sweep_repeat,
                engine=tier,
            )
    sim = bench.sim_payload(scenario, runs, args.duration, args.seed)
    wall = wall_by_engine[tiers[0]]
    sweep = sweep_by_engine.get(tiers[0])
    engines = (
        bench.engines_comparison(wall_by_engine, sweep_by_engine or None)
        if args.engine == "both"
        else None
    )
    snapshot = bench.make_snapshot(
        sim, wall, args.repeat, sweep=sweep, engine=args.engine,
        engines=engines,
    )
    path = bench.snapshot_path(
        args.output, engine=args.engine if args.engine != "both" else None
    )
    bench.write_snapshot(snapshot, path)
    for tier in tiers:
        tier_wall = wall_by_engine[tier]
        for scheme in schemes:
            timing = tier_wall[scheme]
            print(
                f"{scheme:22s} [{tier}] min {timing['min']:.4f}s "
                f"mean {timing['mean']:.4f}s over {args.repeat} runs"
            )
        tier_sweep = sweep_by_engine.get(tier)
        if tier_sweep is not None:
            print(
                f"{'sweep':22s} [{tier}] min "
                f"{tier_sweep['wall_seconds']['min']:.4f}s "
                f"({tier_sweep['scenarios']} scenarios x "
                f"{len(tier_sweep['schemes'])} schemes, "
                f"jobs={tier_sweep['jobs']})"
            )
    if engines is not None and "speedup" in engines:
        pairs = ", ".join(
            f"{k} {v:.2f}x" for k, v in engines["speedup"].items()
        )
        print(f"{'speedup (scalar/fast)':22s} {pairs}")
    print(f"wrote {path}")
    if args.check:
        baseline = bench.load_snapshot(args.check)
        regressions = bench.compare_snapshots(
            baseline, snapshot, tolerance=args.tolerance
        )
        if regressions:
            for line in regressions:
                print(f"REGRESSION: {line}", file=sys.stderr)
            return 1
        print(
            f"no wall-time regressions vs {args.check} "
            f"(tolerance {args.tolerance:.0%})"
        )
    return 0


def cmd_check(args: argparse.Namespace) -> int:
    """Run the differential-oracle correctness tiers."""
    import contextlib

    from repro.check import runner as check_runner

    tier = "deep" if args.deep else "quick"
    bug = (
        check_runner.inject_layout_bug()
        if args.inject_layout_bug
        else contextlib.nullcontext()
    )
    with bug:
        report = check_runner.run_check(
            tier,
            seed=args.seed,
            golden_dir=args.golden,
            echo=print,
            engine=args.engine,
        )
    print("PASS" if report.passed else "FAIL")
    return 0 if report.passed else 1


def cmd_serve(args: argparse.Namespace) -> int:
    """Run the multi-tenant daemon, or its in-process load selftest."""
    import asyncio
    import json
    import signal

    from repro.service.daemon import ServiceDaemon
    from repro.service.load import run_selftest

    secret = bytes.fromhex(args.service_secret) if args.service_secret else None

    if args.selftest:
        report = run_selftest(
            tenants=args.tenants,
            connections=args.connections,
            engines=args.engines,
            duration=args.duration,
            socket_path=args.socket,
            progress=lambda line: print(f"  {line}", flush=True),
        )
        if args.output:
            with open(args.output, "w") as fh:
                json.dump(report, fh, indent=1, sort_keys=True)
            print(f"load report -> {args.output}")
        print(
            f"selftest: {report['sessions_completed']}/{report['tenants']} "
            f"sessions, {report['requests_served']} requests, engines "
            f"{report['engines']}, parity {report['parity_checked']} "
            f"checked in {report['drive_seconds']:.2f}s"
        )
        for line in report["failures"][:20]:
            print(f"FAIL {line}", file=sys.stderr)
        return 0 if report["ok"] else 1

    if (args.socket is None) == (args.port is None):
        print("error: exactly one of --socket / --port", file=sys.stderr)
        return 2

    async def serve() -> None:
        daemon = ServiceDaemon(
            socket_path=args.socket,
            host=args.host,
            port=args.port,
            service_secret=secret,
            state_dir=args.state_dir,
            max_tenants=args.max_tenants,
            max_inflight=args.max_inflight,
            max_step_bytes=args.max_step_bytes,
        )
        stop = asyncio.Event()
        loop = asyncio.get_running_loop()
        for sig in (signal.SIGINT, signal.SIGTERM):
            loop.add_signal_handler(sig, stop.set)
        await daemon.start()
        where = args.socket or f"{args.host}:{daemon.port}"
        print(f"repro daemon listening on {where}", flush=True)
        try:
            await stop.wait()
        finally:
            # SIGTERM is a graceful drain: stop accepting, park every
            # fsync'd tenant journal, then exit 0.
            drained = await daemon.close()
            if args.state_dir:
                print(
                    f"repro daemon drained {drained} tenant journals",
                    flush=True,
                )
            print("repro daemon shut down cleanly", flush=True)

    asyncio.run(serve())
    return 0


def cmd_client(args: argparse.Namespace) -> int:
    """One-shot client verbs against a running daemon."""
    import json

    from repro.service.client import ServiceClient, ServiceError

    secret = args.secret.encode() if args.secret else b""
    try:
        with ServiceClient(
            socket_path=args.socket, host=args.host, port=args.port
        ) as client:
            if args.verb == "ping":
                body = client.ping()
            elif args.verb == "stats":
                body = client.stats()
            elif args.verb == "open":
                body = client.open(
                    args.tenant,
                    secret,
                    scenario=args.scenario,
                    scheme=args.scheme,
                    engine=args.engine,
                    duration=args.duration,
                    seed=args.seed,
                    data_bytes=args.data_bytes,
                )
            elif args.verb == "step":
                body = client.step(args.tenant, secret, requests=args.count)
            elif args.verb == "put":
                body = client.put(
                    args.tenant, secret, args.addr,
                    bytes.fromhex(args.data),
                )
            elif args.verb == "get":
                data = client.get(
                    args.tenant, secret, args.addr, args.size
                )
                body = {"addr": args.addr, "data_hex": data.hex()}
            elif args.verb == "snapshot":
                body = client.snapshot(args.tenant, secret)
            elif args.verb == "report":
                body = client.report(args.tenant, secret)
            else:  # close
                body = client.close(args.tenant, secret)
    except ServiceError as exc:
        print(
            json.dumps({"error": {"code": exc.code, "message": exc.message}})
        )
        return 1
    except (ConnectionError, FileNotFoundError, OSError) as exc:
        print(f"error: cannot reach daemon: {exc}", file=sys.stderr)
        return 2
    print(json.dumps(body, indent=None if args.compact else 1))
    return 0


def build_parser() -> argparse.ArgumentParser:
    """Construct the argument parser for ``python -m repro``."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Unified multi-granular MAC & integrity-tree memory protection "
            "(ISCA'25 reproduction)"
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def add_engine_flag(
        p: argparse.ArgumentParser, both: bool = False
    ) -> None:
        choices = ["scalar", "fast"] + (["both"] if both else [])
        p.add_argument(
            "--engine", choices=choices, default="scalar",
            help="simulation tier: scalar (pure stdlib, default) or fast "
            "(vectorized batch engine, needs numpy; bit-identical results)"
            + (", or both (side-by-side timing)" if both else ""),
        )

    def add_jobs_flag(p: argparse.ArgumentParser) -> None:
        p.add_argument(
            "--jobs", type=int, default=None, metavar="N",
            help=(
                "worker processes for independent simulations "
                "(default: REPRO_JOBS or the CPU count; 1 = serial)"
            ),
        )

    def add_resilience_flags(p: argparse.ArgumentParser) -> None:
        group = p.add_argument_group(
            "resilience", "supervised execution (see docs/resilience.md)"
        )
        group.add_argument(
            "--timeout", type=float, default=None, metavar="SECONDS",
            help="per-task wall-clock timeout (hung workers are killed "
            "and the task retried)",
        )
        group.add_argument(
            "--retries", type=int, default=None, metavar="N",
            help="max retries of transient worker failures per task "
            "(default 3)",
        )
        group.add_argument(
            "--run-id", default=None, metavar="ID",
            help="name this run and journal every completed task under "
            "<runs-dir>/<ID>/ for later --resume",
        )
        group.add_argument(
            "--resume", default=None, metavar="ID",
            help="resume run ID: skip tasks its journal already records "
            "(output stays byte-identical to an uninterrupted run)",
        )
        group.add_argument(
            "--runs-dir", default=None, metavar="DIR",
            help="journal root (default: REPRO_RUNS_DIR or ./runs)",
        )

    def add_fabric_flags(p: argparse.ArgumentParser) -> None:
        group = p.add_argument_group(
            "fabric", "distributed leased execution (see docs/fabric.md)"
        )
        group.add_argument(
            "--workers", type=int, default=None, metavar="N",
            help="execute the fan-out through N fabric worker processes "
            "claiming leases from a spooled work-queue; results land in "
            "the content-addressed store under <runs-dir>/store and are "
            "reused byte-identically on re-runs",
        )
        group.add_argument(
            "--lease-ttl", type=float, default=None, metavar="SECONDS",
            help="lease heartbeat TTL before a dead worker's task is "
            "stolen (default 30)",
        )

    p_list = sub.add_parser("list", help="enumerate library contents")
    p_list.add_argument(
        "what",
        choices=["workloads", "scenarios", "schemes", "experiments", "all"],
        nargs="?",
        default="all",
    )
    p_list.set_defaults(func=cmd_list)

    p_sim = sub.add_parser("simulate", help="simulate one scenario")
    p_sim.add_argument("--scenario", default="cc1")
    p_sim.add_argument(
        "--workloads", default=None, help="custom cpu+gpu+npu+npu combo"
    )
    p_sim.add_argument(
        "--schemes", default="conventional,ours,bmf_unused_ours"
    )
    p_sim.add_argument("--duration", type=float, default=20_000.0)
    p_sim.add_argument("--seed", type=int, default=0)
    add_engine_flag(p_sim)
    p_sim.add_argument(
        "--json",
        action="store_true",
        help="emit the repro-sim/v1 JSON payload instead of a table",
    )
    add_jobs_flag(p_sim)
    add_resilience_flags(p_sim)
    p_sim.set_defaults(func=cmd_simulate)

    p_exp = sub.add_parser("experiment", help="regenerate a paper artifact")
    p_exp.add_argument("id", help="fig04..fig21, tab02, tab04, tab_hw, ...")
    p_exp.add_argument("--duration", type=float, default=None)
    p_exp.add_argument("--sample", type=int, default=None)
    p_exp.add_argument(
        "--plot", action="store_true", help="ASCII CDF plot (fig15/fig17)"
    )
    add_jobs_flag(p_exp)
    add_resilience_flags(p_exp)
    add_fabric_flags(p_exp)
    p_exp.set_defaults(func=cmd_experiment)

    p_rep = sub.add_parser("report", help="regenerate all artifacts")
    p_rep.add_argument("-o", "--output", default=None)
    p_rep.add_argument("--duration", type=float, default=None)
    p_rep.add_argument("--sample", type=int, default=None)
    p_rep.add_argument("--seed", type=int, default=0)
    add_jobs_flag(p_rep)
    add_resilience_flags(p_rep)
    p_rep.set_defaults(func=cmd_report)

    p_flt = sub.add_parser(
        "faults", help="fault-injection campaign on the security engine"
    )
    p_flt.add_argument(
        "--smoke", action="store_true", help="1 trial per cell (CI gate)"
    )
    p_flt.add_argument("--seed", type=int, default=0)
    p_flt.add_argument("--trials", type=int, default=3)
    p_flt.add_argument(
        "--attacks", default=None, help="comma-separated subset of the catalog"
    )
    p_flt.add_argument("--policies", default="fixed,multigranular")
    p_flt.add_argument(
        "--modes", default=None, help="failure modes (default: all three)"
    )
    p_flt.add_argument("--json", default=None, help="also write JSON results")
    add_jobs_flag(p_flt)
    add_resilience_flags(p_flt)
    add_fabric_flags(p_flt)
    p_flt.set_defaults(func=cmd_faults)

    p_cha = sub.add_parser(
        "chaos",
        help="execution-chaos harness: crash/hang/lose workers, damage "
        "journals, assert byte-identical payloads",
    )
    p_cha.add_argument(
        "--mode", choices=["exec", "fabric", "daemon"], default="exec",
        help="exec: pool-executor chaos story (default); fabric: "
        "multi-claimant lease-protocol races (worker deaths, stale "
        "heartbeats, torn results) against the distributed fabric; "
        "daemon: SIGKILL the service daemon mid-fleet, restart from "
        "--state-dir, assert byte-identical tenant digests",
    )
    p_cha.add_argument(
        "--workers", type=int, default=3, metavar="N",
        help="fabric worker processes for --mode fabric (default 3)",
    )
    p_cha.add_argument(
        "--tenants", type=int, default=6,
        help="daemon mode: concurrent tenant sessions (default 6)",
    )
    p_cha.add_argument(
        "--engines", choices=["scalar", "fast", "mixed"], default="mixed",
        help="daemon mode: engine tier per tenant (default mixed; "
        "degrades to scalar without numpy)",
    )
    p_cha.add_argument(
        "--kills", type=int, default=2,
        help="daemon mode: seeded SIGKILL+restart cycles (default 2)",
    )
    p_cha.add_argument(
        "--sample", type=int, default=6,
        help="sweep scenarios to subject to chaos (default 6)",
    )
    p_cha.add_argument("--duration", type=float, default=800.0)
    p_cha.add_argument("--seed", type=int, default=0)
    p_cha.add_argument(
        "--crash-rate", type=float, default=0.2,
        help="seeded probability a worker hard-exits per task attempt",
    )
    p_cha.add_argument(
        "--lost-rate", type=float, default=0.0,
        help="seeded probability a computed result is dropped",
    )
    p_cha.add_argument(
        "--timeout", type=float, default=15.0,
        help="supervision timeout the injected hang must trip",
    )
    p_cha.add_argument("--schemes", default="conventional,ours")
    p_cha.add_argument(
        "--runs-dir", default=None,
        help="journal root for the kill+resume sections "
        "(default: a temp dir, removed afterwards)",
    )
    p_cha.add_argument("--skip-sweep", action="store_true")
    p_cha.add_argument("--skip-campaign", action="store_true")
    add_jobs_flag(p_cha)
    p_cha.set_defaults(func=cmd_chaos)

    p_fab = sub.add_parser(
        "fabric",
        help="distributed campaign fabric: join, inspect or drain a "
        "leased work-queue (see docs/fabric.md)",
    )
    fab_sub = p_fab.add_subparsers(dest="verb", required=True)
    p_fw = fab_sub.add_parser(
        "worker",
        help="join a spooled queue as an extra claimant until it drains",
    )
    p_fw.add_argument(
        "--queue", required=True, metavar="DIR",
        help="queue root: <runs-dir>/<run-id>/fabric/<queue-id>",
    )
    p_fw.add_argument(
        "--store", default=None, metavar="DIR",
        help="result store (default: the queue's <runs-dir>/store)",
    )
    p_fw.add_argument("--worker-id", default=None, metavar="ID")
    p_fw.set_defaults(func=cmd_fabric)
    p_fs = fab_sub.add_parser(
        "status", help="lease/commit progress of every queue under a run"
    )
    p_fs.add_argument("--runs-dir", default=None, metavar="DIR")
    p_fs.add_argument(
        "--run-id", default=None, metavar="ID",
        help="limit to one run (default: every run under --runs-dir)",
    )
    p_fs.add_argument("--store", default=None, metavar="DIR")
    p_fs.set_defaults(func=cmd_fabric)
    p_fd = fab_sub.add_parser(
        "drain",
        help="reclaim expired leases and finish the queue serially",
    )
    p_fd.add_argument("--queue", required=True, metavar="DIR")
    p_fd.add_argument("--store", default=None, metavar="DIR")
    p_fd.set_defaults(func=cmd_fabric)

    p_gc = sub.add_parser(
        "gc",
        help="prune old runs/<id>/ directories and orphaned "
        "result-store blobs",
    )
    p_gc.add_argument("--runs-dir", default=None, metavar="DIR")
    p_gc.add_argument(
        "--keep", type=int, default=5, metavar="N",
        help="newest run directories to keep (default 5)",
    )
    p_gc.add_argument(
        "--store-max-age", type=float, default=None, metavar="SECONDS",
        help="prune store blobs not reused for this long (default: "
        "older than the oldest kept run)",
    )
    p_gc.add_argument(
        "--dry-run", action="store_true",
        help="report what would be removed without deleting",
    )
    p_gc.set_defaults(func=cmd_gc)

    p_trc = sub.add_parser(
        "trace", help="record a structured event trace (JSONL)"
    )
    p_trc.add_argument("scenario", nargs="?", default="cc1")
    p_trc.add_argument("--scheme", default="ours")
    p_trc.add_argument("--duration", type=float, default=5_000.0)
    p_trc.add_argument("--seed", type=int, default=0)
    p_trc.add_argument(
        "--capacity", type=int, default=1 << 18, help="trace ring size"
    )
    p_trc.add_argument("-o", "--output", default=None, help="JSONL path")
    p_trc.add_argument(
        "--timeline", action="store_true", help="print a cycle-bucket timeline"
    )
    p_trc.add_argument("--buckets", type=int, default=24)
    p_trc.add_argument(
        "--no-faults",
        action="store_true",
        help="skip the functional fault slice (timing events only)",
    )
    p_trc.set_defaults(func=cmd_trace)

    p_prf = sub.add_parser(
        "profile", help="profile the simulator (stages + cProfile)"
    )
    p_prf.add_argument("scenario", nargs="?", default="cc1")
    p_prf.add_argument("--schemes", default="conventional,ours")
    p_prf.add_argument("--duration", type=float, default=5_000.0)
    p_prf.add_argument("--seed", type=int, default=0)
    p_prf.add_argument("--top", type=int, default=20)
    p_prf.add_argument(
        "--no-cprofile",
        action="store_true",
        help="stage timers only (cProfile skews absolute times)",
    )
    add_engine_flag(p_prf)
    p_prf.set_defaults(func=cmd_profile)

    p_bch = sub.add_parser(
        "bench", help="write a BENCH_<date>.json performance snapshot"
    )
    p_bch.add_argument("scenario", nargs="?", default="cc1")
    p_bch.add_argument("--schemes", default="unsecure,conventional,ours")
    p_bch.add_argument("--duration", type=float, default=1_500.0)
    p_bch.add_argument("--seed", type=int, default=0)
    p_bch.add_argument("--repeat", type=int, default=3)
    p_bch.add_argument(
        "-o", "--output", default=None,
        help="snapshot path or directory (default BENCH_<date>.json)",
    )
    p_bch.add_argument(
        "--check", default=None,
        help="baseline snapshot to compare against (non-zero on regression)",
    )
    p_bch.add_argument("--tolerance", type=float, default=0.05)
    p_bch.add_argument(
        "--no-sweep", action="store_true",
        help="skip the sweep-timing section of the snapshot",
    )
    p_bch.add_argument("--sweep-sample", type=int, default=None)
    p_bch.add_argument("--sweep-duration", type=float, default=None)
    p_bch.add_argument(
        "--sweep-repeat", type=int, default=1,
        help="sweep timing repetitions (min-of-N; the supervision "
        "overhead gate uses 5 to beat runner noise)",
    )
    add_engine_flag(p_bch, both=True)
    add_jobs_flag(p_bch)
    p_bch.set_defaults(func=cmd_bench)

    p_chk = sub.add_parser(
        "check",
        help="differential-oracle correctness harness (engine vs naive "
        "reference model)",
    )
    tier = p_chk.add_mutually_exclusive_group()
    tier.add_argument(
        "--quick", action="store_true",
        help="CI tier: seeded streams + metamorphic + golden (default)",
    )
    tier.add_argument(
        "--deep", action="store_true",
        help="nightly tier: longer streams, more geometries, timing "
        "and determinism sections",
    )
    p_chk.add_argument(
        "--seed", type=int, default=0,
        help="extra seed folded into every stream (non-zero skips the "
        "golden-corpus section, which pins seed 0)",
    )
    p_chk.add_argument(
        "--golden", default="tests/golden",
        help="golden corpus directory (default tests/golden)",
    )
    p_chk.add_argument(
        "--inject-layout-bug", action="store_true",
        help="deliberately off-by-one the compacted-MAC offset; the "
        "check must FAIL (CI uses this to prove the harness bites)",
    )
    add_engine_flag(p_chk)
    p_chk.set_defaults(func=cmd_check)

    p_srv = sub.add_parser(
        "serve",
        help="multi-tenant secure-memory daemon (repro-wire/v1; see "
        "docs/daemon.md)",
    )
    p_srv.add_argument(
        "--socket", default=None, metavar="PATH",
        help="listen on a Unix socket at PATH",
    )
    p_srv.add_argument(
        "--port", type=int, default=None,
        help="listen on a TCP port (0 picks a free one)",
    )
    p_srv.add_argument(
        "--host", default="127.0.0.1",
        help="TCP bind address (default 127.0.0.1)",
    )
    p_srv.add_argument(
        "--service-secret", default=None, metavar="HEX",
        help="hex seed of the report-signing key (default: ephemeral "
        "random key)",
    )
    p_srv.add_argument(
        "--state-dir", default=None, metavar="DIR",
        help="persist tenants as fsync'd repro-tenant/v1 journals under "
        "DIR; a restarted daemon rehydrates them on open (crash-safe)",
    )
    p_srv.add_argument(
        "--max-tenants", type=int, default=None, metavar="N",
        help="admission control: shed opens beyond N live tenants",
    )
    p_srv.add_argument(
        "--max-inflight", type=int, default=None, metavar="N",
        help="admission control: shed requests beyond N in flight",
    )
    p_srv.add_argument(
        "--max-step-bytes", type=int, default=None, metavar="BYTES",
        help="admission control: shed step windows whose observable "
        "payload would exceed BYTES (~64 bytes/row)",
    )
    p_srv.add_argument(
        "--selftest", action="store_true",
        help="in-process load driver: boot a daemon, drive --tenants "
        "concurrent sessions, assert per-session byte-parity vs "
        "in-process runs, exit non-zero on any divergence",
    )
    p_srv.add_argument(
        "--tenants", type=int, default=64,
        help="selftest: concurrent tenant sessions (default 64)",
    )
    p_srv.add_argument(
        "--connections", type=int, default=8,
        help="selftest: multiplexed client connections (default 8)",
    )
    p_srv.add_argument(
        "--engines", choices=["scalar", "fast", "mixed"], default="mixed",
        help="selftest: engine tier per tenant (mixed alternates; "
        "degrades to scalar without numpy)",
    )
    p_srv.add_argument(
        "--duration", type=float, default=400.0,
        help="selftest: per-tenant trace duration in cycles (default 400)",
    )
    p_srv.add_argument(
        "-o", "--output", default=None,
        help="selftest: write the repro-load/v1 report JSON here",
    )
    p_srv.set_defaults(func=cmd_serve)

    p_cli = sub.add_parser(
        "client",
        help="one-shot client verbs against a running daemon",
    )
    p_cli.add_argument(
        "verb",
        choices=["ping", "stats", "open", "step", "put", "get", "snapshot",
                 "report", "close"],
    )
    p_cli.add_argument("--socket", default=None, metavar="PATH")
    p_cli.add_argument("--port", type=int, default=None)
    p_cli.add_argument("--host", default="127.0.0.1")
    p_cli.add_argument(
        "--tenant", default="cli", help="tenant name (default cli)"
    )
    p_cli.add_argument(
        "--secret", default="", help="tenant secret (authenticates verbs)"
    )
    p_cli.add_argument(
        "--scenario", default="cc1", help="open: scenario name"
    )
    p_cli.add_argument("--scheme", default="ours", help="open: scheme name")
    add_engine_flag(p_cli)
    p_cli.add_argument(
        "--duration", type=float, default=2000.0,
        help="open: trace duration in cycles",
    )
    p_cli.add_argument("--seed", type=int, default=0, help="open: trace seed")
    p_cli.add_argument(
        "--data-bytes", type=int, default=0,
        help="open: size of the functional data shard (0 = none)",
    )
    p_cli.add_argument(
        "--count", type=int, default=None,
        help="step: request window size (default: drain the session)",
    )
    p_cli.add_argument(
        "--addr", type=int, default=0, help="put/get: byte address"
    )
    p_cli.add_argument(
        "--data", default="", help="put: payload as hex (64B-line multiple)"
    )
    p_cli.add_argument(
        "--size", type=int, default=64, help="get: bytes to read"
    )
    p_cli.add_argument(
        "--compact", action="store_true", help="single-line JSON output"
    )
    p_cli.set_defaults(func=cmd_client)

    return parser


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
