"""Message authentication codes, fine-grained and merged (paper Eq. 5).

A fine MAC authenticates one 64B cacheline together with its address
and counter, so relocating or replaying a ciphertext is detectable.  A
coarse (merged) MAC is the left fold of the fine MACs of its region:

    MAC_coarse = H(...H(H(MAC_fine1), MAC_fine2)..., MAC_fineN)

which lets the engine *upgrade* granularity from stored fine MACs
without touching the data, exactly as the paper's granularity-switch
procedure requires (Sec. 4.4, Fig. 13).
"""

from __future__ import annotations

import hashlib
import hmac
from typing import Iterable, Sequence

from repro.common.constants import MAC_BYTES


def compute_mac(key: bytes, addr: int, counter: int, data: bytes) -> bytes:
    """Fine-grained 8B MAC over (address, counter, ciphertext)."""
    h = hashlib.blake2b(key=key, digest_size=MAC_BYTES, person=b"repro-mac-fine0")
    h.update(addr.to_bytes(8, "little"))
    h.update(counter.to_bytes(8, "little"))
    h.update(data)
    return h.digest()


def _fold_step(key: bytes, acc: bytes, mac: bytes) -> bytes:
    h = hashlib.blake2b(key=key, digest_size=MAC_BYTES, person=b"repro-mac-fold0")
    h.update(acc)
    h.update(mac)
    return h.digest()


def nested_mac(key: bytes, fine_macs: Sequence[bytes]) -> bytes:
    """Merged coarse MAC: left fold of fine MACs (paper Eq. 5)."""
    if not fine_macs:
        raise ValueError("cannot merge an empty MAC sequence")
    h = hashlib.blake2b(key=key, digest_size=MAC_BYTES, person=b"repro-mac-init0")
    h.update(fine_macs[0])
    acc = h.digest()
    for mac in fine_macs[1:]:
        acc = _fold_step(key, acc, mac)
    return acc


def node_mac(key: bytes, addr: int, parent_counter: int, payload: bytes) -> bytes:
    """MAC of one integrity-tree node, bound to its parent counter.

    Binding the node hash to the parent's counter is what makes the
    counter tree replay-proof: rolling a node back to an old value
    fails verification against the (fresh) parent counter.
    """
    h = hashlib.blake2b(key=key, digest_size=MAC_BYTES, person=b"repro-mac-node0")
    h.update(addr.to_bytes(8, "little"))
    h.update(parent_counter.to_bytes(8, "little"))
    h.update(payload)
    return h.digest()


def macs_equal(a: bytes, b: bytes) -> bool:
    """Constant-time MAC comparison."""
    return hmac.compare_digest(a, b)


def pack_counters(counters: Iterable[int]) -> bytes:
    """Serialize counters into the byte payload of one tree node."""
    return b"".join(c.to_bytes(8, "little") for c in counters)
