"""Functional cryptography: counter-mode OTP encryption and keyed MACs."""

from repro.crypto.keys import KEY_BYTES, KeySet
from repro.crypto.mac import (
    compute_mac,
    macs_equal,
    nested_mac,
    node_mac,
    pack_counters,
)
from repro.crypto.otp import decrypt_line, encrypt_line, generate_otp, xor_bytes

__all__ = [
    "KEY_BYTES",
    "KeySet",
    "compute_mac",
    "macs_equal",
    "nested_mac",
    "node_mac",
    "pack_counters",
    "decrypt_line",
    "encrypt_line",
    "generate_otp",
    "xor_bytes",
]
