"""Counter-mode one-time-pad encryption (paper Sec. 2.2, Fig. 2).

A pad is a keyed function of (address, counter).  Uniqueness of the
(address, counter) pair guarantees pad uniqueness; the counter is
incremented on every dirty eviction so a pad never repeats for the same
address.  Hardware uses AES; the functional layer uses keyed BLAKE2b,
which preserves the property the system depends on -- pads are
pseudorandom and unique per (key, address, counter).

Multi-granular twist (paper Sec. 4.3): when several cachelines share a
coarse counter, each 64B slice is still encrypted with its *own
address*, so slices of a chunk never share a pad even though they share
a counter.
"""

from __future__ import annotations

import hashlib

from repro.common.constants import CACHELINE_BYTES


def generate_otp(key: bytes, addr: int, counter: int, length: int = CACHELINE_BYTES) -> bytes:
    """Derive a one-time pad for (addr, counter) of ``length`` bytes."""
    if length <= 0:
        raise ValueError(f"non-positive OTP length {length}")
    pad = b""
    block = 0
    while len(pad) < length:
        h = hashlib.blake2b(key=key, digest_size=64, person=b"repro-otp-pad00")
        h.update(addr.to_bytes(8, "little"))
        h.update(counter.to_bytes(8, "little"))
        h.update(block.to_bytes(4, "little"))
        pad += h.digest()
        block += 1
    return pad[:length]


def xor_bytes(data: bytes, pad: bytes) -> bytes:
    """XOR two equal-length byte strings."""
    if len(data) != len(pad):
        raise ValueError(f"length mismatch {len(data)} vs {len(pad)}")
    return bytes(a ^ b for a, b in zip(data, pad))


def encrypt_line(key: bytes, addr: int, counter: int, plaintext: bytes) -> bytes:
    """Encrypt one cacheline: ciphertext = plaintext XOR OTP(addr, counter)."""
    return xor_bytes(plaintext, generate_otp(key, addr, counter, len(plaintext)))


def decrypt_line(key: bytes, addr: int, counter: int, ciphertext: bytes) -> bytes:
    """Decrypt one cacheline (XOR is its own inverse)."""
    return encrypt_line(key, addr, counter, ciphertext)
