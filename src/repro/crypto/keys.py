"""Key material for the functional memory-protection engine.

Real hardware derives its keys from fuses or a secure-boot chain; the
functional layer just needs distinct, fixed-length secrets for the
encryption pad and the MAC.  Keys are wrapped in a class so tests can
create independent engines that provably cannot validate each other's
ciphertexts.
"""

from __future__ import annotations

import hashlib
import os


KEY_BYTES = 32


class KeySet:
    """Encryption + MAC key pair for one memory protection engine."""

    def __init__(self, encryption_key: bytes, mac_key: bytes) -> None:
        if len(encryption_key) != KEY_BYTES or len(mac_key) != KEY_BYTES:
            raise ValueError(f"keys must be {KEY_BYTES} bytes")
        self._encryption_key = bytes(encryption_key)
        self._mac_key = bytes(mac_key)

    @property
    def encryption_key(self) -> bytes:
        return self._encryption_key

    @property
    def mac_key(self) -> bytes:
        return self._mac_key

    @classmethod
    def generate(cls) -> "KeySet":
        """Fresh random keys (non-deterministic, like a real power-on)."""
        return cls(os.urandom(KEY_BYTES), os.urandom(KEY_BYTES))

    @classmethod
    def from_seed(cls, seed: bytes) -> "KeySet":
        """Deterministic keys for reproducible tests and examples."""
        enc = hashlib.blake2b(seed, digest_size=KEY_BYTES, person=b"repro-enc-key01").digest()
        mac = hashlib.blake2b(seed, digest_size=KEY_BYTES, person=b"repro-mac-key01").digest()
        return cls(enc, mac)

    def derive(self, label: bytes) -> "KeySet":
        """Derive a sub-keyset bound to ``label`` (key-epoch rotation).

        Counter-overflow recovery re-encrypts a region under a fresh
        key epoch so counter values may repeat without ever repeating a
        pad.  Derivation is one-way (keyed hash of the label), so old
        epochs cannot be reconstructed from new ones.
        """
        enc = hashlib.blake2b(
            label,
            key=self._encryption_key,
            digest_size=KEY_BYTES,
            person=b"repro-derive-enc",
        ).digest()
        mac = hashlib.blake2b(
            label,
            key=self._mac_key,
            digest_size=KEY_BYTES,
            person=b"repro-derive-mac",
        ).digest()
        return KeySet(enc, mac)
