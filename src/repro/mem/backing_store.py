"""Functional off-chip memory: a sparse byte store the attacker owns.

The functional security layer reads and writes ciphertext, MACs and
tree nodes through this store.  It is deliberately *unprotected*: tests
and examples mutate it directly to model the physical attacker of the
paper's threat model (Sec. 2.5), and the engine must detect every such
mutation.
"""

from __future__ import annotations

from typing import Dict, Iterator, Tuple

from repro.common.constants import CACHELINE_BYTES


class BackingStore:
    """Sparse line-granular byte storage (simulated DRAM contents)."""

    def __init__(self, line_bytes: int = CACHELINE_BYTES) -> None:
        self.line_bytes = line_bytes
        self._lines: Dict[int, bytes] = {}
        self._transient: Dict[int, bytes] = {}
        self._zero = bytes(line_bytes)

    def read_line(self, addr: int) -> bytes:
        """Read the aligned line at ``addr`` (uninitialized lines are zero).

        A pending transient corruption (bus glitch model) is served
        exactly once and then clears itself; subsequent reads see the
        stored contents again.
        """
        self._check_aligned(addr)
        glitched = self._transient.pop(addr, None)
        if glitched is not None:
            return glitched
        return self._lines.get(addr, self._zero)

    def write_line(self, addr: int, data: bytes) -> None:
        """Write one full aligned line."""
        self._check_aligned(addr)
        if len(data) != self.line_bytes:
            raise ValueError(
                f"line write of {len(data)} bytes, expected {self.line_bytes}"
            )
        self._lines[addr] = bytes(data)

    def corrupt(self, addr: int, offset: int = 0, flip_mask: int = 0x01) -> None:
        """Attacker primitive: flip bits of one stored byte in place."""
        self._check_aligned(addr)
        line = bytearray(self._lines.get(addr, self._zero))
        line[offset] ^= flip_mask
        self._lines[addr] = bytes(line)

    def corrupt_transient(
        self, addr: int, offset: int = 0, flip_mask: int = 0x01
    ) -> None:
        """Fault primitive: the *next* read of ``addr`` sees flipped bits.

        Models a transient bus/DRAM glitch rather than a persistent
        off-chip mutation: one read observes the corruption, after
        which the stored line is intact again.  The engine's
        retry-then-quarantine failure policy exists to absorb exactly
        this fault class.
        """
        self._check_aligned(addr)
        line = bytearray(self._lines.get(addr, self._zero))
        line[offset] ^= flip_mask
        self._transient[addr] = bytes(line)

    def snapshot_line(self, addr: int) -> bytes:
        """Attacker primitive: copy a line for a later replay.

        Reads the stored contents directly so snapshotting never
        consumes a pending transient glitch.
        """
        self._check_aligned(addr)
        return self._lines.get(addr, self._zero)

    def replay_line(self, addr: int, old: bytes) -> None:
        """Attacker primitive: restore a previously captured line."""
        self.write_line(addr, old)

    def lines(self) -> Iterator[Tuple[int, bytes]]:
        """Iterate over (addr, data) of populated lines."""
        return iter(sorted(self._lines.items()))

    @property
    def populated_lines(self) -> int:
        return len(self._lines)

    def _check_aligned(self, addr: int) -> None:
        if addr % self.line_bytes != 0:
            raise ValueError(f"address {addr:#x} not {self.line_bytes}B-aligned")
