"""Shared off-chip memory channel: latency + occupancy + FCFS queueing.

The paper's headline effect -- bursty NPU traffic stalling CPU/GPU
requests on a 17 GB/s LPDDR4 channel (Sec. 3.2, 5.4) -- comes from
bandwidth contention.  We model the channel as a single FCFS server:

* every 64B transaction *occupies* the channel for
  ``64 / bytes_per_cycle`` cycles (bandwidth), and
* completes ``latency_cycles`` after it starts service (idle latency).

This reproduces both regimes that matter: at low load, added metadata
transactions cost latency on the critical path; at saturation, every
extra byte delays everyone.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.common.config import MemoryConfig
from repro.common.constants import CACHELINE_BYTES
from repro.obs import NULL_RECORDER, EventType


@dataclass
class ChannelStats:
    """Aggregate channel counters for one simulation."""

    transactions: int = 0
    bytes_transferred: int = 0
    busy_cycles: float = 0.0
    queue_cycles: float = 0.0


#: One CHANNEL_SAMPLE trace event is emitted every this many
#: transactions -- occupancy is a rate, not worth per-transaction cost.
SAMPLE_EVERY = 256


class MemoryChannel:
    """Single shared FCFS memory channel.

    ``submit`` schedules one transaction arriving at ``cycle`` and
    returns ``(start, completion)``.  Arrivals must be non-decreasing
    *per caller discipline is not required*: the server simply never
    starts a transaction before max(arrival, previous finish), so
    out-of-order submission by a small window still yields a consistent
    schedule (we only feed it a merged, nearly-sorted stream).
    """

    def __init__(self, config: MemoryConfig, tracer=NULL_RECORDER) -> None:
        self.config = config
        self._free_at = 0.0
        self.stats = ChannelStats()
        self.tracer = tracer

    def submit(
        self,
        cycle: float,
        nbytes: int = CACHELINE_BYTES,
        addr=None,
    ) -> tuple:
        """Schedule a transaction; return (service_start, completion).

        ``addr`` is accepted (and ignored) so callers can pass it
        uniformly; the bank-aware model in :mod:`repro.mem.dram` uses
        it for row-buffer timing.
        """
        del addr
        occupancy = nbytes / self.config.bytes_per_cycle
        start = max(cycle, self._free_at)
        self._free_at = start + occupancy
        completion = start + occupancy + self.config.latency_cycles

        self.stats.transactions += 1
        self.stats.bytes_transferred += nbytes
        self.stats.busy_cycles += occupancy
        self.stats.queue_cycles += start - cycle
        if self.tracer and self.stats.transactions % SAMPLE_EVERY == 0:
            self.tracer.emit(
                EventType.CHANNEL_SAMPLE,
                cycle,
                backlog_cycles=self._free_at - cycle,
                transactions=self.stats.transactions,
                busy_cycles=self.stats.busy_cycles,
            )
        return start, completion

    def metrics_into(self, registry, prefix: str = "channel") -> None:
        """Bind the channel counters under ``prefix.*`` in a registry."""
        registry.bind(f"{prefix}.transactions", lambda: self.stats.transactions)
        registry.bind(f"{prefix}.bytes", lambda: self.stats.bytes_transferred)
        registry.bind(f"{prefix}.busy_cycles", lambda: self.stats.busy_cycles)
        registry.bind(f"{prefix}.queue_cycles", lambda: self.stats.queue_cycles)

    @property
    def free_at(self) -> float:
        """Cycle at which the channel next becomes idle."""
        return self._free_at

    def utilization(self, elapsed_cycles: float) -> float:
        """Fraction of ``elapsed_cycles`` the channel spent busy."""
        if elapsed_cycles <= 0:
            return 0.0
        return min(1.0, self.stats.busy_cycles / elapsed_cycles)
