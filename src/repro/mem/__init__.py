"""Memory substrate: caches, the shared channel, and the backing store."""

from repro.mem.backing_store import BackingStore
from repro.mem.cache import CacheAccessResult, SetAssociativeCache
from repro.mem.channel import ChannelStats, MemoryChannel

__all__ = [
    "BackingStore",
    "CacheAccessResult",
    "SetAssociativeCache",
    "ChannelStats",
    "MemoryChannel",
]
