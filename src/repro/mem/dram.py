"""Bank-aware DRAM channel: row-buffer hits, per-bank timing.

The default :class:`~repro.mem.channel.MemoryChannel` treats DRAM as a
single FCFS server with one latency.  This optional model adds the
LPDDR structure that interacts with metadata layout: ``banks``
independent banks, each with an open row -- a transaction hitting the
open row pays the column latency only, a conflict pays
activate+precharge on top.  Sequentially laid-out metadata (merged
MACs, packed counter nodes) earns row hits; scattered fine metadata
pays row conflicts, which is an additional, physically grounded reason
coarse granularity wins.

Enable it via ``MemoryConfig(banks=16)``; ``banks=0`` keeps the simple
channel.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.common.config import MemoryConfig
from repro.common.constants import CACHELINE_BYTES
from repro.mem.channel import SAMPLE_EVERY, ChannelStats
from repro.obs import NULL_RECORDER, EventType


class BankedMemoryChannel:
    """Per-bank row-buffer timing over a shared data bus.

    Drop-in for :class:`~repro.mem.channel.MemoryChannel`: ``submit``
    returns (service_start, completion).  When the caller cannot supply
    an address (rare bookkeeping transfers), the transaction is spread
    round-robin with a forced row miss (conservative).
    """

    #: Fraction of the idle latency charged on a row-buffer hit.
    ROW_HIT_FRACTION = 0.6

    #: Extra latency fraction charged on a row conflict (act+pre).
    ROW_CONFLICT_EXTRA = 0.4

    def __init__(
        self,
        config: MemoryConfig,
        banks: int = 16,
        row_bytes: int = 2048,
        tracer=NULL_RECORDER,
    ) -> None:
        if banks <= 0 or row_bytes < CACHELINE_BYTES:
            raise ValueError(f"invalid bank geometry ({banks=}, {row_bytes=})")
        self.config = config
        self.banks = banks
        self.row_bytes = row_bytes
        self._bus_free = 0.0
        self._bank_free: List[float] = [0.0] * banks
        self._open_row: List[Optional[int]] = [None] * banks
        self._rr = 0
        self.stats = ChannelStats()
        self.row_hits = 0
        self.row_misses = 0
        self.tracer = tracer

    def _locate(self, addr: int) -> Tuple[int, int]:
        row = addr // self.row_bytes
        return row % self.banks, row // self.banks

    def submit(
        self,
        cycle: float,
        nbytes: int = CACHELINE_BYTES,
        addr: Optional[int] = None,
    ) -> Tuple[float, float]:
        """Schedule a transaction; return (service_start, completion)."""
        occupancy = nbytes / self.config.bytes_per_cycle
        if addr is None:
            # Bookkeeping transfer with no address: bus-only, average
            # latency, no bank state disturbed.
            start = max(cycle, self._bus_free)
            self._bus_free = start + occupancy
            completion = start + occupancy + self.config.latency_cycles
            self.stats.transactions += 1
            self.stats.bytes_transferred += nbytes
            self.stats.busy_cycles += occupancy
            self.stats.queue_cycles += start - cycle
            return start, completion

        bank, row = self._locate(addr)
        start = max(cycle, self._bus_free, self._bank_free[bank])
        base_latency = self.config.latency_cycles
        if row is not None and self._open_row[bank] == row:
            # Open-row column access: pipelined behind the bus, the
            # bank imposes no extra occupancy.
            latency = base_latency * self.ROW_HIT_FRACTION
            bank_hold = 0.0
            self.row_hits += 1
        else:
            extra = self.ROW_CONFLICT_EXTRA if self._open_row[bank] is not None else 0.0
            latency = base_latency * (1.0 + extra)
            bank_hold = latency * 0.3  # activate/precharge occupancy
            self.row_misses += 1
        self._open_row[bank] = row

        self._bus_free = start + occupancy
        self._bank_free[bank] = start + occupancy + bank_hold
        completion = start + occupancy + latency

        self.stats.transactions += 1
        self.stats.bytes_transferred += nbytes
        self.stats.busy_cycles += occupancy
        self.stats.queue_cycles += start - cycle
        if self.tracer and self.stats.transactions % SAMPLE_EVERY == 0:
            self.tracer.emit(
                EventType.CHANNEL_SAMPLE,
                cycle,
                backlog_cycles=self._bus_free - cycle,
                transactions=self.stats.transactions,
                busy_cycles=self.stats.busy_cycles,
            )
        return start, completion

    @property
    def free_at(self) -> float:
        return self._bus_free

    def utilization(self, elapsed_cycles: float) -> float:
        if elapsed_cycles <= 0:
            return 0.0
        return min(1.0, self.stats.busy_cycles / elapsed_cycles)

    @property
    def row_hit_rate(self) -> float:
        total = self.row_hits + self.row_misses
        return self.row_hits / total if total else 0.0

    def metrics_into(self, registry, prefix: str = "channel") -> None:
        """Bind the channel counters under ``prefix.*`` in a registry."""
        registry.bind(f"{prefix}.transactions", lambda: self.stats.transactions)
        registry.bind(f"{prefix}.bytes", lambda: self.stats.bytes_transferred)
        registry.bind(f"{prefix}.busy_cycles", lambda: self.stats.busy_cycles)
        registry.bind(f"{prefix}.queue_cycles", lambda: self.stats.queue_cycles)
        registry.bind(f"{prefix}.row_hit_rate", lambda: self.row_hit_rate)


def make_channel(config: MemoryConfig, tracer=NULL_RECORDER):
    """Channel factory: banked when ``config.banks`` > 0, simple otherwise."""
    from repro.mem.channel import MemoryChannel

    banks = getattr(config, "banks", 0)
    if banks:
        return BankedMemoryChannel(config, banks=banks, tracer=tracer)
    return MemoryChannel(config, tracer=tracer)
