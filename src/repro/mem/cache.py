"""Set-associative write-back LRU cache model.

Used for the on-chip security-metadata caches (8KB metadata cache, 4KB
MAC cache, granularity-table cache).  The model tracks presence and
dirtiness only -- contents live in the functional layer when needed.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.common.config import CacheConfig


@dataclass(frozen=True)
class CacheAccessResult:
    """Outcome of one cache access.

    Attributes:
        hit: whether the line was present.
        writeback_addr: line address evicted dirty by this access (the
            caller must issue a write transaction for it), or None.
    """

    hit: bool
    writeback_addr: Optional[int] = None


#: Shared immutable results for the two overwhelmingly common outcomes
#: (hit, and miss with no dirty victim); ``access`` runs once per
#: metadata touch, so avoiding an allocation per call is measurable.
_HIT = CacheAccessResult(hit=True)
_MISS = CacheAccessResult(hit=False)


class SetAssociativeCache:
    """LRU set-associative cache keyed by line address.

    Addresses are mapped to lines by ``line_bytes`` and to sets by the
    line index modulo the set count.  ``access`` performs an allocate-
    on-miss lookup; ``probe`` checks presence without disturbing LRU.
    """

    def __init__(self, config: CacheConfig) -> None:
        self.config = config
        self._sets: List[OrderedDict] = [
            OrderedDict() for _ in range(config.num_sets)
        ]
        # Hot-path copies of the geometry: ``access`` is the most
        # frequently called method in the whole timing layer and the
        # frozen-dataclass attribute chain shows up in profiles.
        self._line_bytes = config.line_bytes
        self._num_sets = config.num_sets
        self._ways = config.ways
        self.hits = 0
        self.misses = 0
        self.writebacks = 0

    def _locate(self, addr: int) -> tuple:
        line = addr // self._line_bytes
        return line, self._sets[line % self._num_sets]

    def probe(self, addr: int) -> bool:
        """Presence check with no side effects."""
        line, cache_set = self._locate(addr)
        return line in cache_set

    def access(self, addr: int, write: bool = False) -> CacheAccessResult:
        """Look up ``addr``; allocate on miss; return hit + any writeback."""
        line = addr // self._line_bytes
        cache_set = self._sets[line % self._num_sets]
        if line in cache_set:
            self.hits += 1
            if write and not cache_set[line]:
                cache_set[line] = True
            cache_set.move_to_end(line)
            return _HIT

        self.misses += 1
        if len(cache_set) >= self._ways:
            victim_line, victim_dirty = cache_set.popitem(last=False)
            if victim_dirty:
                self.writebacks += 1
                cache_set[line] = write
                return CacheAccessResult(
                    hit=False,
                    writeback_addr=victim_line * self._line_bytes,
                )
        cache_set[line] = write
        return _MISS

    def touch_dirty(self, addr: int) -> None:
        """Mark a (present) line dirty without counting an access."""
        line, cache_set = self._locate(addr)
        if line in cache_set:
            cache_set.pop(line)
            cache_set[line] = True

    def invalidate(self, addr: int) -> bool:
        """Drop a line (no writeback; the caller decides what that means)."""
        line, cache_set = self._locate(addr)
        return cache_set.pop(line, None) is not None

    def flush(self) -> int:
        """Evict everything; return the number of dirty lines dropped."""
        dirty = 0
        for cache_set in self._sets:
            dirty += sum(1 for d in cache_set.values() if d)
            cache_set.clear()
        self.writebacks += dirty
        return dirty

    def reset_stats(self) -> None:
        """Zero the counters without disturbing cache contents (warmup)."""
        self.hits = 0
        self.misses = 0
        self.writebacks = 0

    @property
    def accesses(self) -> int:
        return self.hits + self.misses

    @property
    def miss_rate(self) -> float:
        total = self.accesses
        return self.misses / total if total else 0.0

    def stats(self) -> Dict[str, int]:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "writebacks": self.writebacks,
        }

    def metrics_into(self, registry, prefix: str) -> None:
        """Bind this cache's counters under ``prefix.*`` in a registry."""
        registry.bind(f"{prefix}.hits", lambda: self.hits)
        registry.bind(f"{prefix}.misses", lambda: self.misses)
        registry.bind(f"{prefix}.writebacks", lambda: self.writebacks)
        registry.bind(f"{prefix}.miss_rate", lambda: self.miss_rate)
