"""Extension ablations: design-parameter sweeps beyond the paper.

DESIGN.md calls out four load-bearing hardware choices the paper fixes
by fiat; these sweeps quantify each on two contrasting scenarios
(c1 coarse-leaning, ff1 fine-leaning):

* access-tracker entries (paper: 12 = 3 x processing units);
* tracker lifetime window (paper: 16K cycles);
* metadata-cache capacity (paper: 8KB);
* memory bandwidth (paper: 17 GB/s LPDDR4);
* the DRAM channel model (simple latency/occupancy vs bank-aware
  row-buffer timing -- the banked model amplifies the locality
  advantage of merged metadata);
* split vs unified metadata/MAC caches (the design alternative the
  paper's Sec. 2.2 mentions).
"""

from __future__ import annotations

from dataclasses import replace
from typing import Callable, List, Optional

from repro.common.config import (
    CacheConfig,
    EngineConfig,
    MemoryConfig,
    SoCConfig,
    TrackerConfig,
)
from repro.experiments.common import ExperimentResult
from repro.sim.runner import run_scenario
from repro.sim.scenario import selected_scenario

PAPER_NOTE = (
    "Extension: parameter sweeps around the paper's fixed design points "
    "(tracker 12 entries / 16K cycles, 8KB metadata cache, 17 GB/s)"
)

SCENARIOS = ("ff1", "c1")
SCHEMES = ("unsecure", "conventional", "ours")
_COLUMNS = ["parameter", "value", "scenario", "conventional", "ours", "ours_gain"]


def _sweep(
    parameter: str,
    values: List[object],
    make_config: Callable[[object], SoCConfig],
    duration_cycles: Optional[float],
    seed: int,
) -> List[dict]:
    rows = []
    for value in values:
        config = make_config(value)
        for scenario_name in SCENARIOS:
            runs = run_scenario(
                selected_scenario(scenario_name),
                SCHEMES,
                config,
                duration_cycles,
                seed,
            )
            base = runs["unsecure"]
            conv = runs["conventional"].mean_normalized_exec_time(base)
            ours = runs["ours"].mean_normalized_exec_time(base)
            rows.append(
                {
                    "parameter": parameter,
                    "value": value,
                    "scenario": scenario_name,
                    "conventional": conv,
                    "ours": ours,
                    "ours_gain": (conv - ours) / conv,
                }
            )
    return rows


def _with_tracker(entries: Optional[int] = None, lifetime: Optional[int] = None):
    def make(value):
        tracker = TrackerConfig(
            entries=value if entries is None else entries,
            lifetime_cycles=value if lifetime is None else lifetime,
        )
        return SoCConfig(engine=replace(EngineConfig(), tracker=tracker))

    return make


def run(
    duration_cycles: Optional[float] = None, seed: int = 0
) -> ExperimentResult:
    """Run all four design-parameter sweeps."""
    rows: List[dict] = []

    rows += _sweep(
        "tracker_entries",
        [4, 12, 24],
        _with_tracker(lifetime=16 * 1024),
        duration_cycles,
        seed,
    )
    rows += _sweep(
        "tracker_lifetime",
        [4 * 1024, 16 * 1024, 64 * 1024],
        _with_tracker(entries=12),
        duration_cycles,
        seed,
    )
    rows += _sweep(
        "metadata_cache_bytes",
        [4 * 1024, 8 * 1024, 32 * 1024],
        lambda value: SoCConfig(
            engine=replace(EngineConfig(), metadata_cache=CacheConfig(value))
        ),
        duration_cycles,
        seed,
    )
    rows += _sweep(
        "bandwidth_bytes_per_cycle",
        [8.5, 17.0, 34.0],
        lambda value: SoCConfig(memory=MemoryConfig(bytes_per_cycle=value)),
        duration_cycles,
        seed,
    )
    rows += _sweep(
        "dram_model",
        ["simple", "banked16"],
        lambda value: SoCConfig(
            memory=MemoryConfig(banks=16 if value == "banked16" else 0)
        ),
        duration_cycles,
        seed,
    )
    rows += _sweep(
        "metadata_cache_layout",
        ["split", "unified"],
        lambda value: SoCConfig(
            engine=replace(
                EngineConfig(), unified_metadata_cache=value == "unified"
            )
        ),
        duration_cycles,
        seed,
    )

    return ExperimentResult(
        experiment="ext_ablations",
        title="Extension -- design-parameter sweeps (conventional vs ours)",
        columns=_COLUMNS,
        rows=rows,
        notes=[PAPER_NOTE],
    )
