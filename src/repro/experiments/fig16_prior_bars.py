"""Fig. 16: execution time, traffic and security-cache misses vs prior work.

Traffic and miss counts are normalized to ``Ours`` (the paper's Fig. 16
convention); execution time is normalized to the unsecured scheme.
"""

from __future__ import annotations

from typing import Optional

from repro.experiments.common import ExperimentResult, default_sweep_sample, label, mean
from repro.experiments.sweep import (
    cache_misses,
    normalized_exec_times,
    sweep_results,
    total_traffic,
)

PAPER_NOTE = (
    "Paper Fig. 16: Adaptive/CommonCTR/BMF&Unused carry 7.0%/6.1%/0.2% "
    "more traffic than Ours; Ours has 19.9%/17.0%/14.3% fewer security "
    "cache misses (Sec. 5.2)"
)

SCHEMES = ("adaptive", "common_ctr", "bmf_unused", "ours", "bmf_unused_ours")
_COLUMNS = ["scheme", "norm_exec", "traffic_vs_ours", "misses_vs_ours"]


def run(
    sample: Optional[int] = None,
    duration_cycles: Optional[float] = None,
    seed: int = 0,
    jobs: Optional[int] = None,
) -> ExperimentResult:
    """Regenerate Fig. 16's three bar groups."""
    if sample is None:
        sample = default_sweep_sample()
    results = sweep_results(sample, duration_cycles, seed, jobs=jobs)

    ours_traffic = sum(total_traffic(results, "ours"))
    ours_misses = sum(cache_misses(results, "ours"))

    rows = []
    for scheme in SCHEMES:
        rows.append(
            {
                "scheme": label(scheme),
                "norm_exec": mean(normalized_exec_times(results, scheme)),
                "traffic_vs_ours": sum(total_traffic(results, scheme))
                / max(1, ours_traffic),
                "misses_vs_ours": sum(cache_misses(results, scheme))
                / max(1, ours_misses),
            }
        )
    return ExperimentResult(
        experiment="fig16",
        title=(
            f"Fig. 16 -- Exec time / traffic / security-cache misses vs "
            f"prior studies ({len(results)} scenarios)"
        ),
        columns=_COLUMNS,
        rows=rows,
        notes=[PAPER_NOTE],
    )
