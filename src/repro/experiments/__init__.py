"""Paper-reproduction experiments: one module per table/figure.

Each module exposes ``run(...) -> ExperimentResult`` (Fig. 19 returns a
dict of panels).  The benchmark harness under ``benchmarks/`` executes
these and prints the same rows the paper reports; EXPERIMENTS.md
records paper-vs-measured numbers.
"""

from repro.experiments import (
    ext_ablations,
    ext_metadata,
    ext_phases,
    fig04_stream_chunks,
    fig05_breakdown,
    fig06_per_device,
    fig15_cdf_prior,
    fig16_prior_bars,
    fig17_cdf_breakdown,
    fig18_breakdown_bars,
    fig19_selected,
    fig20_ablation,
    fig21_realworld,
    tab02_switching,
    tab04_workloads,
    tab_hw_overhead,
)
from repro.experiments.common import ExperimentResult, label

ALL_EXPERIMENTS = {
    "fig04": fig04_stream_chunks,
    "fig05": fig05_breakdown,
    "fig06": fig06_per_device,
    "fig15": fig15_cdf_prior,
    "fig16": fig16_prior_bars,
    "fig17": fig17_cdf_breakdown,
    "fig18": fig18_breakdown_bars,
    "fig19": fig19_selected,
    "fig20": fig20_ablation,
    "fig21": fig21_realworld,
    "tab02": tab02_switching,
    "tab04": tab04_workloads,
    "tab_hw": tab_hw_overhead,
    "ext_ablations": ext_ablations,
    "ext_metadata": ext_metadata,
    "ext_phases": ext_phases,
}

__all__ = ["ALL_EXPERIMENTS", "ExperimentResult", "label"]
