"""Fig. 4: ratio of stream chunks per workload, per granularity.

A *stream chunk* is a memory chunk whose covered region is fully
accessed within the 16K-cycle tracking window.  We replay each
workload's trace through the access tracker + detector and classify
every request by the granularity its address resolves to under the
detected ``stream_part`` bitmap -- the request-weighted version of the
paper's chunk-ratio metric.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.common.constants import GRANULARITIES
from repro.core import stream_part
from repro.core.detector import merge_detection
from repro.core.gran_table import GranularityTable
from repro.core.tracker import AccessTracker
from repro.experiments.common import ExperimentResult
from repro.sim.runner import sim_duration
from repro.workloads.registry import (
    CPU_WORKLOADS,
    GPU_WORKLOADS,
    NPU_WORKLOADS,
    get_workload,
)
from repro.workloads.generator import generate_trace

PAPER_NOTE = "Paper Fig. 4: stream-chunk ratio per workload (Sec. 3.1)"

_COLUMNS = ["workload", "device", "64B", "512B", "4KB", "32KB"]


def stream_ratio_of_workload(
    name: str, duration_cycles: Optional[float] = None, seed: int = 0
) -> Dict[int, float]:
    """Fraction of requests per resolved stream granularity.

    Runs the tracker -> detector -> table pipeline exactly as the
    schemes do (including censored capacity evictions and lazy
    resolution): a warmup pass trains the table, then every request of
    the measured pass is classified by the granularity it actually
    resolves to at that moment.
    """
    spec = get_workload(name)
    duration = duration_cycles if duration_cycles is not None else sim_duration()
    trace = generate_trace(spec, duration, base_addr=0, seed=seed)

    tracker = AccessTracker()
    table = GranularityTable()
    counts = {granularity: 0 for granularity in GRANULARITIES}

    def bank(eviction) -> None:
        chunk = eviction.entry.chunk_index
        bits = merge_detection(
            table.entry_by_chunk(chunk).next,
            eviction.entry.access_bits,
            censored=eviction.reason == "capacity",
        )
        table.record_detection(chunk, bits)

    def replay(classify: bool) -> None:
        cycle = 0.0
        for gap, addr, is_write in trace.entries:
            cycle += gap
            for eviction in tracker.observe(addr, int(cycle)):
                bank(eviction)
            granularity, _ = table.resolve(addr, is_write)
            if classify:
                counts[granularity] += 1

    replay(classify=False)  # warmup: train the table
    replay(classify=True)   # measure: classify each request as resolved

    total = max(1, sum(counts.values()))
    return {granularity: count / total for granularity, count in counts.items()}


def run(
    duration_cycles: Optional[float] = None, seed: int = 0
) -> ExperimentResult:
    """Regenerate Fig. 4's series for all 14 evaluated workloads."""
    rows = []
    groups = (
        ("cpu", CPU_WORKLOADS),
        ("gpu", GPU_WORKLOADS),
        ("npu", NPU_WORKLOADS),
    )
    for device, names in groups:
        for name in names:
            ratios = stream_ratio_of_workload(name, duration_cycles, seed)
            rows.append(
                {
                    "workload": name,
                    "device": device,
                    "64B": ratios[GRANULARITIES[0]],
                    "512B": ratios[GRANULARITIES[1]],
                    "4KB": ratios[GRANULARITIES[2]],
                    "32KB": ratios[GRANULARITIES[3]],
                }
            )
    return ExperimentResult(
        experiment="fig04",
        title="Fig. 4 -- Stream-chunk ratio per workload (request-weighted)",
        columns=_COLUMNS,
        rows=rows,
        notes=[PAPER_NOTE],
    )
