"""Fig. 15: execution-time CDFs vs prior work across the scenario sweep.

Compares Ours against the dual-granular-MAC baseline (Adaptive [56]),
the dual-granular-counter baseline (CommonCTR [35]) and the subtree
schemes (BMF&Unused, BMF&Unused+Ours).  Rows report distribution
percentiles plus the mean of each scheme's normalized execution time.
"""

from __future__ import annotations

from typing import Optional

from repro.common.stats import mean, percentile
from repro.experiments.common import ExperimentResult, default_sweep_sample, label
from repro.experiments.sweep import normalized_exec_times, sweep_results

PAPER_NOTE = (
    "Paper Fig. 15: Ours beats Adaptive by 8.5% and CommonCTR by 7.7%; "
    "BMF&Unused+Ours beats BMF&Unused by 7.4% and Ours by 6.9% (Sec. 5.2)"
)

SCHEMES = ("adaptive", "common_ctr", "ours", "bmf_unused", "bmf_unused_ours")
_COLUMNS = ["scheme", "mean", "p25", "p50", "p75", "p90", "max"]


def run(
    sample: Optional[int] = None,
    duration_cycles: Optional[float] = None,
    seed: int = 0,
    jobs: Optional[int] = None,
) -> ExperimentResult:
    """Regenerate Fig. 15's CDF summary statistics."""
    if sample is None:
        sample = default_sweep_sample()
    results = sweep_results(sample, duration_cycles, seed, jobs=jobs)
    rows = []
    for scheme in SCHEMES:
        times = normalized_exec_times(results, scheme)
        rows.append(
            {
                "scheme": label(scheme),
                "mean": mean(times),
                "p25": percentile(times, 25),
                "p50": percentile(times, 50),
                "p75": percentile(times, 75),
                "p90": percentile(times, 90),
                "max": max(times) if times else 0.0,
            }
        )
    return ExperimentResult(
        experiment="fig15",
        title=(
            f"Fig. 15 -- Normalized execution time vs prior studies "
            f"(CDF summary, {len(results)} scenarios)"
        ),
        columns=_COLUMNS,
        rows=rows,
        notes=[PAPER_NOTE],
    )


def cdf_series(
    scheme: str,
    sample: Optional[int] = None,
    duration_cycles: Optional[float] = None,
    seed: int = 0,
):
    """Full (value, cumulative fraction) CDF series for plotting."""
    from repro.common.stats import cdf_points

    if sample is None:
        sample = default_sweep_sample()
    results = sweep_results(sample, duration_cycles, seed)
    return cdf_points(normalized_exec_times(results, scheme))
