"""Fig. 21: real-world application pipelines (Table 6).

The Finance pipeline (GPU page-rank -> CPU route-planning -> NPU
recommendation) and the AutoDrive pipeline (GPU stencil -> NPU
Yolo-Tiny -> CPU stream clustering) run as three-device scenarios with
overlapping producer/consumer buffers.
"""

from __future__ import annotations

from typing import Optional

from repro.experiments.common import ExperimentResult, label
from repro.sim.runner import run_many
from repro.sim.scenario import REALWORLD_SCENARIOS

PAPER_NOTE = (
    "Paper Fig. 21: Finance overhead 45.0% (conventional) -> 24.2% "
    "(Ours) -> 19.6% (+subtrees); AutoDrive 41.4% -> 34.5% -> 21.9%; "
    "static is worse than conventional on AutoDrive (Sec. 5.5)"
)

SCHEMES = (
    "unsecure",
    "conventional",
    "static_device",
    "ours",
    "bmf_unused_ours",
)
_COLUMNS = ["pipeline", "scheme", "norm_exec", "overhead"]


def run(
    duration_cycles: Optional[float] = None,
    seed: int = 0,
    jobs: Optional[int] = None,
) -> ExperimentResult:
    """Regenerate Fig. 21's pipeline bars."""
    rows = []
    for scenario, runs in run_many(
        REALWORLD_SCENARIOS, SCHEMES, None, duration_cycles, seed, jobs=jobs
    ):
        base = runs["unsecure"]
        for scheme in SCHEMES[1:]:
            norm = runs[scheme].mean_normalized_exec_time(base)
            rows.append(
                {
                    "pipeline": scenario.name,
                    "scheme": label(scheme),
                    "norm_exec": norm,
                    "overhead": norm - 1.0,
                }
            )
    return ExperimentResult(
        experiment="fig21",
        title="Fig. 21 -- Real-world pipelines (Finance / AutoDrive)",
        columns=_COLUMNS,
        rows=rows,
        notes=[PAPER_NOTE],
    )
