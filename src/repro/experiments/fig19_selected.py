"""Fig. 19: detailed analysis of the 11 selected scenarios.

(a) normalized execution time per scenario (Conventional / Ours /
BMF&Unused+Ours), (b) the stream-chunk granularity distribution each
scenario exposes, and (c) per-device normalized execution time under
Ours -- the three panels of the paper's Fig. 19.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.common.constants import GRANULARITIES
from repro.experiments.common import ExperimentResult, mean
from repro.sim.runner import run_scenario
from repro.sim.scenario import SELECTED_GROUPS, SELECTED_SCENARIOS

PAPER_NOTE = (
    "Paper Fig. 19: gains grow from the ff group (5.9%) to the cc group "
    "(24.1%); CPU/GPU improve more than NPUs (24.2%/22.7%/9.5%, Sec. 5.4)"
)

SCHEMES = ("unsecure", "conventional", "ours", "bmf_unused_ours")
_COLUMNS_A = ["scenario", "group", "conventional", "ours", "bmf_unused_ours"]
_COLUMNS_B = ["scenario", "64B", "512B", "4KB", "32KB"]
_COLUMNS_C = ["scenario", "device", "workload", "conventional", "ours"]


def _group_of(name: str) -> str:
    for group, members in SELECTED_GROUPS.items():
        if name in members:
            return group
    return "?"


def run(
    duration_cycles: Optional[float] = None, seed: int = 0
) -> Dict[str, ExperimentResult]:
    """Regenerate all three panels; returns {'a': ..., 'b': ..., 'c': ...}."""
    rows_a = []
    rows_b = []
    rows_c = []
    group_gains: Dict[str, list] = {g: [] for g in SELECTED_GROUPS}

    for scenario in SELECTED_SCENARIOS:
        runs = run_scenario(scenario, SCHEMES, None, duration_cycles, seed)
        base = runs["unsecure"]
        conv = runs["conventional"].mean_normalized_exec_time(base)
        ours = runs["ours"].mean_normalized_exec_time(base)
        combined = runs["bmf_unused_ours"].mean_normalized_exec_time(base)
        group = _group_of(scenario.name)
        group_gains[group].append((conv - ours) / conv)

        rows_a.append(
            {
                "scenario": scenario.name,
                "group": group,
                "conventional": conv,
                "ours": ours,
                "bmf_unused_ours": combined,
            }
        )

        hist = runs["ours"].scheme.stats.granularity_hist
        total = max(1, hist.total)
        rows_b.append(
            {
                "scenario": scenario.name,
                "64B": hist.buckets.get(GRANULARITIES[0], 0) / total,
                "512B": hist.buckets.get(GRANULARITIES[1], 0) / total,
                "4KB": hist.buckets.get(GRANULARITIES[2], 0) / total,
                "32KB": hist.buckets.get(GRANULARITIES[3], 0) / total,
            }
        )

        conv_devices = runs["conventional"].normalized_exec_times(base)
        ours_devices = runs["ours"].normalized_exec_times(base)
        for device, conv_norm, ours_norm in zip(
            base.devices, conv_devices, ours_devices
        ):
            rows_c.append(
                {
                    "scenario": scenario.name,
                    "device": device.name,
                    "workload": device.workload,
                    "conventional": conv_norm,
                    "ours": ours_norm,
                }
            )

    group_note = ", ".join(
        f"{group}: {mean(gains):.1%}" for group, gains in group_gains.items()
    )
    panel_a = ExperimentResult(
        experiment="fig19a",
        title="Fig. 19 (a) -- Normalized execution time, selected scenarios",
        columns=_COLUMNS_A,
        rows=rows_a,
        notes=[PAPER_NOTE, f"Measured Ours gain vs conventional by group: {group_note}"],
    )
    panel_b = ExperimentResult(
        experiment="fig19b",
        title="Fig. 19 (b) -- Stream-chunk distribution per scenario",
        columns=_COLUMNS_B,
        rows=rows_b,
        notes=[PAPER_NOTE],
    )
    panel_c = ExperimentResult(
        experiment="fig19c",
        title="Fig. 19 (c) -- Per-device normalized execution time",
        columns=_COLUMNS_C,
        rows=rows_c,
        notes=[PAPER_NOTE],
    )
    return {"a": panel_a, "b": panel_b, "c": panel_c}
