"""Fig. 5: conventional-protection overhead breakdown per device class.

For every workload run in isolation (and for the heterogeneous
selected scenarios), execution time is decomposed into the MAC share
(``mac_only`` vs ``unsecure``) and the counter/tree share
(``conventional`` vs ``mac_only``), alongside the traffic increment --
the exact bars of the paper's Fig. 5.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.common.config import SoCConfig
from repro.experiments.common import ExperimentResult, mean
from repro.schemes.registry import build_scheme
from repro.sim.runner import run_scenario, sim_duration
from repro.sim.scenario import SELECTED_SCENARIOS
from repro.sim.soc import simulate
from repro.workloads.generator import generate_trace
from repro.workloads.registry import (
    CPU_WORKLOADS,
    GPU_WORKLOADS,
    NPU_WORKLOADS,
    get_workload,
)

PAPER_NOTE = (
    "Paper Fig. 5: +Cost(MAC) / +Cost(counter) breakdown "
    "(Sec. 3.2; paper: CPU 26.3%+40.7%, GPU 5.4%+4.4%, NPU 9.9%+11.3%, "
    "hetero 14.3%+19.5%)"
)

_SCHEMES = ("unsecure", "mac_only", "conventional")
_COLUMNS = [
    "class",
    "mac_overhead",
    "counter_overhead",
    "total_overhead",
    "traffic_increase",
]


def _single_device_overheads(
    workload: str, duration: float, seed: int
) -> Dict[str, float]:
    config = SoCConfig()
    spec = get_workload(workload)
    trace = generate_trace(spec, duration, base_addr=0, seed=seed)
    finishes: Dict[str, float] = {}
    traffic: Dict[str, int] = {}
    for name in _SCHEMES:
        scheme = build_scheme(name, config)
        result = simulate([trace], scheme, config, warmup=True)
        finishes[name] = result.devices[0].finish_cycle
        traffic[name] = result.total_traffic_bytes
    base = finishes["unsecure"]
    return {
        "mac_overhead": finishes["mac_only"] / base - 1.0,
        "counter_overhead": (
            finishes["conventional"] - finishes["mac_only"]
        )
        / base,
        "total_overhead": finishes["conventional"] / base - 1.0,
        "traffic_increase": traffic["conventional"] / max(1, traffic["unsecure"])
        - 1.0,
    }


def _hetero_overheads(duration: float, seed: int) -> Dict[str, float]:
    macs: List[float] = []
    counters: List[float] = []
    totals: List[float] = []
    traffics: List[float] = []
    for scenario in SELECTED_SCENARIOS:
        runs = run_scenario(scenario, _SCHEMES, None, duration, seed)
        base = runs["unsecure"]
        mac_norm = runs["mac_only"].mean_normalized_exec_time(base)
        conv_norm = runs["conventional"].mean_normalized_exec_time(base)
        macs.append(mac_norm - 1.0)
        counters.append(conv_norm - mac_norm)
        totals.append(conv_norm - 1.0)
        traffics.append(
            runs["conventional"].total_traffic_bytes
            / max(1, base.total_traffic_bytes)
            - 1.0
        )
    return {
        "mac_overhead": mean(macs),
        "counter_overhead": mean(counters),
        "total_overhead": mean(totals),
        "traffic_increase": mean(traffics),
    }


def run(
    duration_cycles: Optional[float] = None, seed: int = 0
) -> ExperimentResult:
    """Regenerate Fig. 5's per-device-class breakdown bars."""
    duration = duration_cycles if duration_cycles is not None else sim_duration()
    rows = []
    for device, names in (
        ("cpu", CPU_WORKLOADS),
        ("gpu", GPU_WORKLOADS),
        ("npu", NPU_WORKLOADS),
    ):
        samples = [
            _single_device_overheads(name, duration, seed) for name in names
        ]
        rows.append(
            {
                "class": device,
                **{
                    key: mean([sample[key] for sample in samples])
                    for key in samples[0]
                },
            }
        )
    rows.append({"class": "hetero", **_hetero_overheads(duration, seed)})
    return ExperimentResult(
        experiment="fig05",
        title="Fig. 5 -- Conventional protection overhead breakdown",
        columns=_COLUMNS,
        rows=rows,
        notes=[PAPER_NOTE],
    )
