"""Shared scenario sweep used by Figs. 15-18.

The four prior-work/breakdown figures all evaluate the same scenario
population under overlapping scheme sets, so the sweep runs once per
(schemes, sample, duration, seed) signature and is memoized for the
process lifetime -- a pytest session regenerating every figure reuses
one sweep.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.sim.runner import run_scenario, sweep_scenarios
from repro.sim.scenario import Scenario, all_scenarios
from repro.sim.soc import RunResult

#: Every scheme any of Figs. 15-18 needs; sweeping them together lets
#: the memoized sweep serve all four figures.
SWEEP_SCHEMES: Tuple[str, ...] = (
    "unsecure",
    "conventional",
    "static_device",
    "adaptive",
    "common_ctr",
    "multi_ctr_only",
    "ours",
    "bmf_unused",
    "bmf_unused_ours",
)

_cache: Dict[tuple, List[Tuple[Scenario, Dict[str, RunResult]]]] = {}


def sweep_results(
    sample: Optional[int],
    duration_cycles: Optional[float] = None,
    seed: int = 0,
    schemes: Sequence[str] = SWEEP_SCHEMES,
) -> List[Tuple[Scenario, Dict[str, RunResult]]]:
    """Run (or reuse) the scenario sweep for the given signature."""
    key = (tuple(schemes), sample, duration_cycles, seed)
    cached = _cache.get(key)
    if cached is not None:
        return cached
    scenarios = sweep_scenarios(all_scenarios(), sample)
    results = [
        (
            scenario,
            run_scenario(scenario, schemes, None, duration_cycles, seed),
        )
        for scenario in scenarios
    ]
    _cache[key] = results
    return results


def normalized_exec_times(
    results: List[Tuple[Scenario, Dict[str, RunResult]]], scheme: str
) -> List[float]:
    """Per-scenario mean normalized execution time of one scheme."""
    return [
        runs[scheme].mean_normalized_exec_time(runs["unsecure"])
        for _, runs in results
    ]


def total_traffic(
    results: List[Tuple[Scenario, Dict[str, RunResult]]], scheme: str
) -> List[int]:
    """Per-scenario total off-chip bytes moved by one scheme."""
    return [runs[scheme].total_traffic_bytes for _, runs in results]


def cache_misses(
    results: List[Tuple[Scenario, Dict[str, RunResult]]], scheme: str
) -> List[int]:
    """Per-scenario security-cache (metadata + MAC) miss counts."""
    return [runs[scheme].security_cache_misses for _, runs in results]


def clear_cache() -> None:
    """Drop memoized sweeps (tests use this to force fresh runs)."""
    _cache.clear()
