"""Shared scenario sweep used by Figs. 15-18.

The four prior-work/breakdown figures all evaluate the same scenario
population under overlapping scheme sets, so the sweep runs once per
signature and is memoized for the process lifetime -- a pytest session
regenerating every figure reuses one sweep.

The memo key includes the *effective environment*: ``sweep_scenarios``
reads ``REPRO_FULL_SWEEP`` and the duration default comes from
``REPRO_SIM_DURATION``, so a cached sweep must never be served after
either changes mid-process (duration scans and the full-sweep CI job
both do exactly that).  The memo is LRU-bounded -- a duration scan
would otherwise accumulate one full sweep result per step forever.
``jobs`` is deliberately *not* part of the key: parallel and serial
sweeps are numerically identical (asserted by the parity suite), so
either may serve the other from cache.
"""

from __future__ import annotations

import json
import os
from collections import OrderedDict
from typing import Dict, List, Optional, Sequence, Tuple

from repro.sim.runner import run_many, sweep_scenarios
from repro.sim.scenario import Scenario, all_scenarios
from repro.sim.soc import ResultView

#: Every scheme any of Figs. 15-18 needs; sweeping them together lets
#: the memoized sweep serve all four figures.
SWEEP_SCHEMES: Tuple[str, ...] = (
    "unsecure",
    "conventional",
    "static_device",
    "adaptive",
    "common_ctr",
    "multi_ctr_only",
    "ours",
    "bmf_unused",
    "bmf_unused_ours",
)

#: A handful of distinct sweep signatures covers every figure plus a
#: couple of ad-hoc calls; anything beyond this is a scan that should
#: not pin every step's results in memory.
_CACHE_MAX = 8
_cache: "OrderedDict[tuple, List[Tuple[Scenario, Dict[str, ResultView]]]]" = (
    OrderedDict()
)


def _env_fingerprint() -> Tuple[Optional[str], Optional[str]]:
    """The env knobs a sweep's content depends on."""
    return (
        os.environ.get("REPRO_SIM_DURATION"),
        os.environ.get("REPRO_FULL_SWEEP"),
    )


def sweep_results(
    sample: Optional[int],
    duration_cycles: Optional[float] = None,
    seed: int = 0,
    schemes: Sequence[str] = SWEEP_SCHEMES,
    jobs: Optional[int] = None,
) -> List[Tuple[Scenario, Dict[str, ResultView]]]:
    """Run (or reuse) the scenario sweep for the given signature.

    ``jobs`` above 1 fans the sweep out over worker processes (see
    :mod:`repro.sim.parallel`); results are then slim picklable
    payloads rather than live ``RunResult`` objects -- identical for
    everything the figures read.
    """
    key = (tuple(schemes), sample, duration_cycles, seed, _env_fingerprint())
    cached = _cache.get(key)
    if cached is not None:
        _cache.move_to_end(key)
        return cached
    scenarios = sweep_scenarios(all_scenarios(), sample)
    results = run_many(
        scenarios, schemes, None, duration_cycles, seed, jobs=jobs
    )
    _cache[key] = results
    while len(_cache) > _CACHE_MAX:
        _cache.popitem(last=False)
    return results


def canonical_payloads(
    results: List[Tuple[Scenario, Dict[str, ResultView]]],
    schemes: Optional[Sequence[str]] = None,
) -> List[str]:
    """Canonical per-run JSON strings -- the byte-parity currency.

    Serial, parallel, supervised and resumed executions of the same
    sweep must produce *identical* lists; the parity tests and the
    chaos harness compare these strings directly.
    """
    out: List[str] = []
    for _scenario, runs in results:
        names = list(schemes) if schemes is not None else sorted(runs)
        for name in names:
            out.append(json.dumps(runs[name].to_dict(), sort_keys=True))
    return out


def normalized_exec_times(
    results: List[Tuple[Scenario, Dict[str, ResultView]]], scheme: str
) -> List[float]:
    """Per-scenario mean normalized execution time of one scheme."""
    return [
        runs[scheme].mean_normalized_exec_time(runs["unsecure"])
        for _, runs in results
    ]


def total_traffic(
    results: List[Tuple[Scenario, Dict[str, ResultView]]], scheme: str
) -> List[int]:
    """Per-scenario total off-chip bytes moved by one scheme."""
    return [runs[scheme].total_traffic_bytes for _, runs in results]


def cache_misses(
    results: List[Tuple[Scenario, Dict[str, ResultView]]], scheme: str
) -> List[int]:
    """Per-scenario security-cache (metadata + MAC) miss counts."""
    return [runs[scheme].security_cache_misses for _, runs in results]


def clear_cache() -> None:
    """Drop memoized sweeps (tests use this to force fresh runs)."""
    _cache.clear()
