"""Table 4: workload classification (access pattern x traffic class).

Measures each workload's realized request intensity and stream-chunk
composition and re-derives its fine/coarse and small/medium/large
labels, checking them against the calibrated spec labels -- a
self-consistency check that the synthetic suite realizes the paper's
Table-4 taxonomy.
"""

from __future__ import annotations

from typing import Optional

from repro.common.constants import GRANULARITIES
from repro.experiments.common import ExperimentResult
from repro.experiments.fig04_stream_chunks import stream_ratio_of_workload
from repro.sim.runner import sim_duration
from repro.workloads.generator import generate_trace
from repro.workloads.registry import WORKLOADS

PAPER_NOTE = "Paper Table 4: workload access-pattern and traffic classes"

_COLUMNS = [
    "workload",
    "device",
    "spec_pattern",
    "measured_pattern",
    "spec_traffic",
    "req_per_kcycle",
    "measured_traffic",
]


def classify_pattern(coarse_fraction: float, spread: float) -> str:
    """Map a coarse-traffic fraction to the paper's ff/f/c/cc/d classes."""
    if spread > 0.8:
        return "d"
    if coarse_fraction < 0.10:
        return "ff"
    if coarse_fraction < 0.35:
        return "f"
    if coarse_fraction < 0.70:
        return "c"
    return "cc"


def classify_traffic(requests_per_kcycle: float) -> str:
    """Map realized intensity to the paper's s/m/l classes."""
    if requests_per_kcycle < 45.0:
        return "s"
    if requests_per_kcycle < 120.0:
        return "m"
    return "l"


def run(
    duration_cycles: Optional[float] = None, seed: int = 0
) -> ExperimentResult:
    """Regenerate Table 4's classification for every workload."""
    duration = duration_cycles if duration_cycles is not None else sim_duration()
    rows = []
    for name, spec in sorted(WORKLOADS.items()):
        trace = generate_trace(spec, duration, base_addr=0, seed=seed)
        intensity = (
            1000.0 * len(trace.entries) / max(1.0, trace.compute_cycles)
        )
        ratios = stream_ratio_of_workload(name, duration, seed)
        coarse = ratios[GRANULARITIES[2]] + ratios[GRANULARITIES[3]]
        # "diverse" means no single class dominates.
        spread = 1.0 - max(ratios.values())
        rows.append(
            {
                "workload": name,
                "device": spec.kind.value,
                "spec_pattern": spec.pattern_label,
                "measured_pattern": classify_pattern(coarse, spread),
                "spec_traffic": spec.traffic_label,
                "req_per_kcycle": intensity,
                "measured_traffic": classify_traffic(intensity),
            }
        )
    return ExperimentResult(
        experiment="tab04",
        title="Table 4 -- Workload classification (spec vs measured)",
        columns=_COLUMNS,
        rows=rows,
        notes=[PAPER_NOTE],
    )
