"""Terminal plotting helpers: ASCII CDFs and bar charts.

The paper's Figs. 15/17 are CDFs and most others are bar groups; these
helpers render both in plain text so `python -m repro experiment fig15
--plot` can show the *curve*, not just percentiles, without any
plotting dependency.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

#: Glyphs cycled across series in a combined plot.
_GLYPHS = "ox+*#@%&"


def ascii_cdf(
    series: Dict[str, Sequence[float]],
    width: int = 64,
    height: int = 16,
) -> str:
    """Render empirical CDFs of several series on one ASCII canvas.

    X axis spans the min..max of all values; Y axis is the cumulative
    fraction 0..1.  Each series gets a glyph; the legend maps them.
    """
    values = [v for data in series.values() for v in data]
    if not values:
        return "(no data)"
    lo, hi = min(values), max(values)
    span = (hi - lo) or 1.0

    canvas = [[" "] * width for _ in range(height)]
    for (name, data), glyph in zip(series.items(), _GLYPHS):
        ordered = sorted(data)
        n = len(ordered)
        for rank, value in enumerate(ordered):
            x = int((value - lo) / span * (width - 1))
            y = int((rank + 1) / n * (height - 1))
            canvas[height - 1 - y][x] = glyph

    lines = ["1.0 |" + "".join(row) for row in canvas]
    lines[-1] = "0.0 |" + lines[-1][5:]
    for i in range(1, height - 1):
        lines[i] = "    |" + lines[i][5:]
    lines.append("    +" + "-" * width)
    center = max(1, width - 20)
    lines.append(
        f"     {lo:<10.3f}{'normalized execution time'[:center]:^{center}}"
        f"{hi:>10.3f}"
    )
    legend = "  ".join(
        f"{glyph}={name}" for (name, _), glyph in zip(series.items(), _GLYPHS)
    )
    lines.append("     " + legend)
    return "\n".join(lines)


def ascii_bars(
    rows: List[Tuple[str, float]],
    width: int = 48,
    baseline: float = 0.0,
) -> str:
    """Horizontal bar chart of (label, value) pairs."""
    if not rows:
        return "(no data)"
    hi = max(value for _, value in rows)
    span = (hi - baseline) or 1.0
    label_width = max(len(label) for label, _ in rows)
    lines = []
    for label, value in rows:
        filled = int(max(0.0, value - baseline) / span * width)
        lines.append(
            f"{label.ljust(label_width)} | {'#' * filled:<{width}} {value:.3f}"
        )
    return "\n".join(lines)
