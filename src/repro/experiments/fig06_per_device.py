"""Fig. 6: per-device vs per-partition granularity on alex and sfrnn.

The paper's motivating comparison (Sec. 3.3): a single static
granularity per device mispredicts the minority of accesses, while a
per-512B-partition dynamic choice adapts.  We run each workload in
isolation under the conventional baseline, the per-device static
scheme at its *dominant-class* granularity (the paper notes per-device
granularity "only reflects the majority of data accesses"), and the
dynamic multi-granular scheme as the realizable per-partition choice.
"""

from __future__ import annotations

from typing import Optional

from repro.common.config import SoCConfig
from repro.experiments.common import ExperimentResult
from repro.schemes.registry import build_scheme
from repro.schemes.static import StaticGranularScheme
from repro.sim.runner import sim_duration
from repro.sim.soc import simulate
from repro.workloads.generator import generate_trace
from repro.workloads.registry import get_workload

PAPER_NOTE = (
    "Paper Fig. 6: Per-device-best degrades alex 13.6% / sfrnn 16.3% vs "
    "conventional; per-partition improves 15.6% / 14.4% (Sec. 3.3)"
)

WORKLOADS = ("alex", "sfrnn")
_COLUMNS = [
    "workload",
    "scheme",
    "granularity",
    "norm_exec_vs_conventional",
    "traffic_vs_conventional",
]


def run(
    duration_cycles: Optional[float] = None, seed: int = 0
) -> ExperimentResult:
    """Regenerate Fig. 6's bars for the two spotlighted workloads."""
    duration = duration_cycles if duration_cycles is not None else sim_duration()
    config = SoCConfig()
    rows = []
    for name in WORKLOADS:
        spec = get_workload(name)
        trace = generate_trace(spec, duration, base_addr=0, seed=seed)

        conventional = simulate(
            [trace], build_scheme("conventional", config), config, warmup=True
        )
        conv_finish = conventional.devices[0].finish_cycle
        conv_traffic = conventional.total_traffic_bytes

        per_device_gran = spec.dominant_granularity
        per_device = simulate(
            [trace],
            StaticGranularScheme(config, {0: per_device_gran}),
            config,
            warmup=True,
        )
        per_partition = simulate(
            [trace], build_scheme("ours", config), config, warmup=True
        )

        for scheme_label, result, granularity in (
            ("per-device-best", per_device, str(per_device_gran)),
            ("per-partition (ours)", per_partition, "dynamic"),
        ):
            rows.append(
                {
                    "workload": name,
                    "scheme": scheme_label,
                    "granularity": granularity,
                    "norm_exec_vs_conventional": result.devices[0].finish_cycle
                    / conv_finish,
                    "traffic_vs_conventional": result.total_traffic_bytes
                    / max(1, conv_traffic),
                }
            )
    return ExperimentResult(
        experiment="fig06",
        title="Fig. 6 -- Per-device vs per-partition granularity",
        columns=_COLUMNS,
        rows=rows,
        notes=[PAPER_NOTE],
    )
