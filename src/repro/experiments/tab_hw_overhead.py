"""Sec. 4.5: on-chip hardware overhead of the proposed mechanism.

Re-derives the paper's hardware budget from the implemented components
(rather than quoting it): tracker entry bits, detection buffer, and the
granularity-table sizing for a 4GB protected memory.
"""

from __future__ import annotations

from repro.common.constants import (
    CHUNK_BYTES,
    CHUNK_INDEX_BITS,
    LINES_PER_CHUNK,
    PARTITIONS_PER_CHUNK,
    PROTECTED_MEMORY_BYTES,
)
from repro.core.gran_table import TABLE_ENTRY_BYTES
from repro.core.tracker import AccessTracker
from repro.experiments.common import ExperimentResult

PAPER_NOTE = (
    "Paper Sec. 4.5: 12 x 561b = 842B tracker + 8B detection buffer "
    "(~850B total on-chip); granularity table ~2MB in protected memory "
    "for 4GB (16B per 32KB chunk)"
)

_COLUMNS = ["component", "quantity", "paper_value"]


def run(duration_cycles=None, seed: int = 0) -> ExperimentResult:
    """Regenerate the Sec. 4.5 hardware-overhead accounting."""
    del duration_cycles, seed  # analytic: nothing to simulate
    tracker = AccessTracker()
    entry_bits = LINES_PER_CHUNK + CHUNK_INDEX_BITS
    tracker_bits = tracker.on_chip_bits()
    detection_buffer_bits = PARTITIONS_PER_CHUNK  # one stream_part
    table_entries = PROTECTED_MEMORY_BYTES // CHUNK_BYTES
    table_bytes = table_entries * TABLE_ENTRY_BYTES

    rows = [
        {
            "component": "tracker entry bits (512 access + 49 index)",
            "quantity": entry_bits,
            "paper_value": "561 bits",
        },
        {
            "component": "access tracker total (12 entries)",
            "quantity": f"{tracker_bits} bits = {tracker_bits // 8}B",
            "paper_value": "842B",
        },
        {
            "component": "detection buffer (one stream_part)",
            "quantity": f"{detection_buffer_bits} bits = 8B",
            "paper_value": "8B",
        },
        {
            "component": "on-chip total",
            "quantity": f"{tracker_bits // 8 + detection_buffer_bits // 8}B",
            "paper_value": "~850B",
        },
        {
            "component": "granularity table entry",
            "quantity": f"{TABLE_ENTRY_BYTES}B per 32KB chunk",
            "paper_value": "16B (8B current + 8B next)",
        },
        {
            "component": "granularity table, 4GB memory",
            "quantity": f"{table_bytes // (1024 * 1024)}MB in protected region",
            "paper_value": "~2MB",
        },
    ]
    return ExperimentResult(
        experiment="tab_hw",
        title="Sec. 4.5 -- Hardware overhead accounting",
        columns=_COLUMNS,
        rows=rows,
        notes=[PAPER_NOTE],
    )
