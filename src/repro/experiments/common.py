"""Shared infrastructure for the paper-reproduction experiments.

Every experiment module exposes ``run(...) -> ExperimentResult`` and a
module-level ``PAPER_NOTE`` describing the paper artifact it mirrors.
Results carry structured rows plus a plain-text rendering so benchmark
harnesses can print exactly the series the paper reports.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

#: Human-readable labels for Table-5 scheme names.
SCHEME_LABELS: Dict[str, str] = {
    "unsecure": "Unsecure",
    "mac_only": "+Cost (MAC)",
    "conventional": "Conventional",
    "static_device": "Static-device-best",
    "adaptive": "Adaptive [56]",
    "common_ctr": "CommonCTR [35]",
    "multi_ctr_only": "Multi(CTR)-only",
    "ours": "Ours",
    "ours_dual": "Ours (dual-granular)",
    "ours_no_switch": "Ours w/o Switch.Overhead",
    "bmf_unused": "BMF&Unused [17,16]",
    "bmf_unused_ours": "BMF&Unused+Ours",
    "bmf_unused_ours_no_switch": "BMF&Unused+Ours w/o Switch.",
}


@dataclass
class ExperimentResult:
    """Structured output of one experiment."""

    experiment: str
    title: str
    columns: List[str]
    rows: List[Dict[str, object]]
    notes: List[str] = field(default_factory=list)

    def column_values(self, column: str) -> List[object]:
        return [row.get(column) for row in self.rows]

    def format_table(self) -> str:
        """Fixed-width text rendering of the rows."""

        def fmt(value: object) -> str:
            if isinstance(value, float):
                return f"{value:.3f}"
            return str(value)

        widths = {
            col: max(
                len(col), *(len(fmt(row.get(col, ""))) for row in self.rows)
            )
            if self.rows
            else len(col)
            for col in self.columns
        }
        header = "  ".join(col.ljust(widths[col]) for col in self.columns)
        rule = "-" * len(header)
        lines = [self.title, rule, header, rule]
        for row in self.rows:
            lines.append(
                "  ".join(
                    fmt(row.get(col, "")).ljust(widths[col])
                    for col in self.columns
                )
            )
        lines.append(rule)
        lines.extend(self.notes)
        return "\n".join(lines)


def default_sweep_sample(default: int = 24) -> Optional[int]:
    """Scenario subsample size for sweep experiments.

    ``REPRO_SWEEP_SAMPLE`` overrides; ``REPRO_FULL_SWEEP=1`` runs all
    250 scenarios (handled downstream by ``sweep_scenarios``).
    """
    raw = os.environ.get("REPRO_SWEEP_SAMPLE")
    if raw is None:
        return default
    return int(raw)


def label(scheme_name: str) -> str:
    return SCHEME_LABELS.get(scheme_name, scheme_name)


def mean(values: Sequence[float]) -> float:
    return sum(values) / len(values) if values else 0.0
