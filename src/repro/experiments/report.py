"""One-shot report generation: every paper artifact into one document.

``python -m repro report [-o FILE]`` regenerates all experiments at the
chosen scale and writes a single markdown report with every table, so a
reviewer can diff two runs (or two machines) wholesale.
"""

from __future__ import annotations

import io
import time
from typing import Dict, Optional

from repro.experiments import ALL_EXPERIMENTS
from repro.experiments.common import ExperimentResult

#: Regeneration order: paper artifacts first, extensions last.
REPORT_ORDER = (
    "tab_hw",
    "fig04",
    "tab04",
    "fig05",
    "fig06",
    "tab02",
    "fig15",
    "fig16",
    "fig17",
    "fig18",
    "fig19",
    "fig20",
    "fig21",
    "ext_metadata",
    "ext_ablations",
    "ext_phases",
)


def _render(result: ExperimentResult, out: io.StringIO) -> None:
    out.write(f"## {result.title}\n\n```\n")
    out.write(result.format_table())
    out.write("\n```\n\n")


#: Experiments whose ``run`` accepts a ``jobs`` parameter (they fan
#: independent simulations out over worker processes).
PARALLEL_EXPERIMENTS = ("fig15", "fig16", "fig17", "fig18", "fig20", "fig21")


def generate_report(
    duration_cycles: Optional[float] = None,
    sample: Optional[int] = None,
    seed: int = 0,
    experiments=REPORT_ORDER,
    progress=None,
    jobs: Optional[int] = None,
) -> str:
    """Run the chosen experiments and return the markdown report."""
    out = io.StringIO()
    out.write("# repro — full reproduction report\n\n")
    out.write(
        f"Scale: duration={duration_cycles or 'default'} cycles/device, "
        f"sweep sample={sample or 'default'}, seed={seed}.\n\n"
    )

    timings: Dict[str, float] = {}
    for key in experiments:
        module = ALL_EXPERIMENTS[key]
        if progress is not None:
            progress(key)
        kwargs = {}
        if key in ("fig15", "fig16", "fig17", "fig18"):
            kwargs["sample"] = sample
            kwargs["duration_cycles"] = duration_cycles
        elif key not in ("tab_hw", "ext_metadata"):
            kwargs["duration_cycles"] = duration_cycles
        if jobs is not None and key in PARALLEL_EXPERIMENTS:
            kwargs["jobs"] = jobs
        started = time.perf_counter()
        result = module.run(seed=seed, **kwargs)
        timings[key] = time.perf_counter() - started
        if isinstance(result, dict):  # fig19 panels
            for panel in result.values():
                _render(panel, out)
        else:
            _render(result, out)

    out.write("## Regeneration times\n\n```\n")
    for key, elapsed in timings.items():
        out.write(f"{key:14s} {elapsed:8.1f}s\n")
    out.write("```\n")

    # When the report ran under an explicit supervisor (--run-id,
    # --resume, --timeout), surface what the executor survived: a
    # resumed report should *say* how much work the journal saved.
    from repro.sim.resilient import current_supervisor

    supervisor = current_supervisor()
    if supervisor is not None and (
        supervisor.report.attempts or supervisor.report.resume_skips
    ):
        out.write("\n## Supervision\n\n```\n")
        out.write(supervisor.report.summary() + "\n")
        for name, value in sorted(supervisor.report.as_dict().items()):
            out.write(f"{name:26s} {value}\n")
        out.write("```\n")
    return out.getvalue()
