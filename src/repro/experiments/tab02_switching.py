"""Table 2: granularity-switching category ratios.

Runs the selected heterogeneous scenarios under the full multi-granular
scheme and aggregates the lazy-switching events by Table-2 category
(scale direction x read/write history), plus the correct-prediction
rate.  The paper reports 73.5% correct predictions with RAR scale-ups
(8.8%) as the dominant costly case.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.experiments.common import ExperimentResult
from repro.sim.runner import run_scenario
from repro.sim.scenario import SELECTED_SCENARIOS

PAPER_NOTE = (
    "Paper Table 2: correct prediction 73.5%; scale-up RAR 8.8% is the "
    "main costly case; scale-downs are lazy (Sec. 4.4)"
)

_CATEGORY_COST = {
    "coarse_to_fine": "zero (lazy) / moderate for non-R/O MACs",
    "fine_to_coarse_WAR": "zero (lazy switching)",
    "fine_to_coarse_WAW": "zero (lazy switching)",
    "fine_to_coarse_RAR": "low (fetch parent to root)",
    "fine_to_coarse_RAW": "negligible (metadata cache)",
}

_COLUMNS = ["category", "events", "ratio", "modeled_cost"]


def run(
    duration_cycles: Optional[float] = None, seed: int = 0
) -> ExperimentResult:
    """Regenerate Table 2's switching-category breakdown."""
    events: Dict[str, int] = {}
    resolutions = 0
    correct = 0
    for scenario in SELECTED_SCENARIOS:
        runs = run_scenario(scenario, ("ours",), None, duration_cycles, seed)
        accounting = runs["ours"].scheme.stats.switching
        for key, count in accounting.events_by_category.items():
            events[key] = events.get(key, 0) + count
        resolutions += accounting.total_resolutions
        correct += accounting.correct_predictions

    rows = []
    for category in sorted(_CATEGORY_COST):
        count = events.get(category, 0)
        rows.append(
            {
                "category": category,
                "events": count,
                "ratio": count / max(1, resolutions),
                "modeled_cost": _CATEGORY_COST[category],
            }
        )
    rows.append(
        {
            "category": "correct_prediction",
            "events": correct,
            "ratio": correct / max(1, resolutions),
            "modeled_cost": "-",
        }
    )
    return ExperimentResult(
        experiment="tab02",
        title="Table 2 -- Granularity-switching categories (11 scenarios)",
        columns=_COLUMNS,
        rows=rows,
        notes=[PAPER_NOTE],
    )
