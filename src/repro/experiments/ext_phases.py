"""Extension: phased workloads and seed robustness.

Two analyses that close the gap between the sweep's stationarity and
real applications:

* **phase stress** -- a trace alternating between alex's coarse
  character and mcf's fine one over the same address range drives the
  detector's misprediction rate toward the paper's regime and shows
  the switching machinery (lazy switching + tile-down handler)
  containing the cost;
* **seed robustness** -- one fine and one coarse scenario across
  several trace seeds: the scheme orderings should be properties of
  the workload *character*, not of one random stream.
"""

from __future__ import annotations

from typing import Optional

from repro.common.config import SoCConfig
from repro.experiments.common import ExperimentResult, mean
from repro.schemes.registry import build_scheme
from repro.sim.runner import run_scenario, sim_duration
from repro.sim.scenario import selected_scenario
from repro.sim.soc import simulate
from repro.workloads.phases import generate_phased_trace
from repro.workloads.registry import get_workload

PAPER_NOTE = (
    "Extension: phase changes drive misprediction toward the paper's "
    "26.5% regime; orderings hold across seeds"
)

_COLUMNS = ["analysis", "configuration", "value"]
SEEDS = (0, 1, 2)


def phase_rows(duration: float, seed: int) -> list:
    """Misprediction rates of a stationary vs a phased alex trace."""
    config = SoCConfig()
    rows = []
    stationary = generate_phased_trace(
        [get_workload("alex")], duration / 2, phases=2, seed=seed
    )
    phased = generate_phased_trace(
        [get_workload("alex"), get_workload("mcf")],
        duration / 4,
        phases=4,
        seed=seed,
    )
    for label, trace in (("stationary", stationary), ("phased", phased)):
        scheme = build_scheme("ours", config)
        simulate([trace], scheme, config, warmup=True)
        accounting = scheme.stats.switching
        rows.append(
            {
                "analysis": "phase_stress",
                "configuration": f"{label}: misprediction rate",
                "value": accounting.misprediction_rate,
            }
        )
        rows.append(
            {
                "analysis": "phase_stress",
                "configuration": f"{label}: switches",
                "value": accounting.total_switches,
            }
        )
    return rows


def seed_rows(duration: float) -> list:
    """Ours-vs-conventional gain across trace seeds for ff1/cc1."""
    rows = []
    for scenario_name in ("ff1", "cc1"):
        gains = []
        for seed in SEEDS:
            runs = run_scenario(
                selected_scenario(scenario_name),
                ("unsecure", "conventional", "ours"),
                duration_cycles=duration,
                seed=seed,
            )
            base = runs["unsecure"]
            conv = runs["conventional"].mean_normalized_exec_time(base)
            ours = runs["ours"].mean_normalized_exec_time(base)
            gains.append((conv - ours) / conv)
        spread = max(gains) - min(gains)
        rows.append(
            {
                "analysis": "seed_robustness",
                "configuration": f"{scenario_name}: mean ours gain "
                f"({len(SEEDS)} seeds)",
                "value": mean(gains),
            }
        )
        rows.append(
            {
                "analysis": "seed_robustness",
                "configuration": f"{scenario_name}: gain spread",
                "value": spread,
            }
        )
    return rows


def run(
    duration_cycles: Optional[float] = None, seed: int = 0
) -> ExperimentResult:
    """Regenerate the phase-stress and seed-robustness analyses."""
    duration = duration_cycles if duration_cycles is not None else sim_duration()
    rows = phase_rows(duration, seed) + seed_rows(duration)
    return ExperimentResult(
        experiment="ext_phases",
        title="Extension -- phase stress and seed robustness",
        columns=_COLUMNS,
        rows=rows,
        notes=[PAPER_NOTE],
    )
