"""Fig. 20: dual-granularity and switching-overhead ablations.

Four variants over the 11 selected scenarios: Ours, Ours restricted to
dual granularity (64B + 32KB), Ours with switching overhead removed
(perfect prediction), and the combined subtree scheme with and without
switching overhead.
"""

from __future__ import annotations

from typing import Optional

from repro.experiments.common import ExperimentResult, label, mean
from repro.sim.runner import run_many
from repro.sim.scenario import SELECTED_SCENARIOS

PAPER_NOTE = (
    "Paper Fig. 20: dual granularity loses 3.3% on average (5.8% on "
    "f1-c3); removing switching overhead gains 4.4%; "
    "BMF&Unused+Ours w/o switching reaches 12.1% overhead (Sec. 5.4)"
)

SCHEMES = (
    "unsecure",
    "ours",
    "ours_dual",
    "ours_no_switch",
    "bmf_unused_ours",
    "bmf_unused_ours_no_switch",
)
_COLUMNS = [
    "scenario",
    "ours",
    "ours_dual",
    "ours_no_switch",
    "bmf_unused_ours",
    "bmf_no_switch",
]


def run(
    duration_cycles: Optional[float] = None,
    seed: int = 0,
    jobs: Optional[int] = None,
) -> ExperimentResult:
    """Regenerate Fig. 20's ablation bars."""
    rows = []
    sums = {name: 0.0 for name in SCHEMES[1:]}
    for scenario, runs in run_many(
        SELECTED_SCENARIOS, SCHEMES, None, duration_cycles, seed, jobs=jobs
    ):
        base = runs["unsecure"]
        norms = {
            name: runs[name].mean_normalized_exec_time(base)
            for name in SCHEMES[1:]
        }
        for name, value in norms.items():
            sums[name] += value
        rows.append(
            {
                "scenario": scenario.name,
                "ours": norms["ours"],
                "ours_dual": norms["ours_dual"],
                "ours_no_switch": norms["ours_no_switch"],
                "bmf_unused_ours": norms["bmf_unused_ours"],
                "bmf_no_switch": norms["bmf_unused_ours_no_switch"],
            }
        )
    count = len(SELECTED_SCENARIOS)
    rows.append(
        {
            "scenario": "MEAN",
            "ours": sums["ours"] / count,
            "ours_dual": sums["ours_dual"] / count,
            "ours_no_switch": sums["ours_no_switch"] / count,
            "bmf_unused_ours": sums["bmf_unused_ours"] / count,
            "bmf_no_switch": sums["bmf_unused_ours_no_switch"] / count,
        }
    )
    return ExperimentResult(
        experiment="fig20",
        title="Fig. 20 -- Dual-granularity / switching-overhead ablations",
        columns=_COLUMNS,
        rows=rows,
        notes=[
            PAPER_NOTE,
            "Columns: " + ", ".join(label(n) for n in SCHEMES[1:]),
        ],
    )
