"""Fig. 18: breakdown bars -- exec time, traffic and miss reductions.

Execution time and data traffic are normalized to the unsecured
scheme; security-cache misses to the conventional scheme (the paper's
Fig. 18 convention).
"""

from __future__ import annotations

from typing import Optional

from repro.experiments.common import ExperimentResult, default_sweep_sample, label, mean
from repro.experiments.sweep import (
    cache_misses,
    normalized_exec_times,
    sweep_results,
    total_traffic,
)

PAPER_NOTE = (
    "Paper Fig. 18: Ours cuts traffic 10.5% and misses 31.9% vs "
    "conventional; BMF&Unused+Ours reaches 9.3% traffic over unsecure "
    "and 56.9% fewer misses (Sec. 5.3)"
)

SCHEMES = (
    "conventional",
    "static_device",
    "multi_ctr_only",
    "ours",
    "bmf_unused_ours",
)
_COLUMNS = [
    "scheme",
    "norm_exec",
    "traffic_vs_unsecure",
    "misses_vs_conventional",
]


def run(
    sample: Optional[int] = None,
    duration_cycles: Optional[float] = None,
    seed: int = 0,
    jobs: Optional[int] = None,
) -> ExperimentResult:
    """Regenerate Fig. 18's three bar groups."""
    if sample is None:
        sample = default_sweep_sample()
    results = sweep_results(sample, duration_cycles, seed, jobs=jobs)

    unsecure_traffic = sum(total_traffic(results, "unsecure"))
    conventional_misses = sum(cache_misses(results, "conventional"))

    rows = []
    for scheme in SCHEMES:
        rows.append(
            {
                "scheme": label(scheme),
                "norm_exec": mean(normalized_exec_times(results, scheme)),
                "traffic_vs_unsecure": sum(total_traffic(results, scheme))
                / max(1, unsecure_traffic),
                "misses_vs_conventional": sum(cache_misses(results, scheme))
                / max(1, conventional_misses),
            }
        )
    return ExperimentResult(
        experiment="fig18",
        title=(
            f"Fig. 18 -- Breakdown: exec / traffic / misses "
            f"({len(results)} scenarios)"
        ),
        columns=_COLUMNS,
        rows=rows,
        notes=[PAPER_NOTE],
    )
