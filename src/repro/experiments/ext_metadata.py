"""Extension: stored-metadata footprint and tree-geometry design space.

Two analyses beyond the paper's timing results:

* **functional footprint** (paper Figs. 1/9 visualized as numbers):
  bytes of MACs and tree nodes the functional engine actually stores
  for one streamed chunk under each policy -- promotion prunes whole
  subtrees and merging collapses MAC arrays;
* **tree arity design space** (paper Sec. 6 discusses VAULT/Morphable
  counters): tree height and node count for 4GB protected memory
  across arities, the knob those works turn.
"""

from __future__ import annotations

from typing import Optional

from repro.common.constants import CHUNK_BYTES, GRANULARITIES
from repro.crypto.keys import KeySet
from repro.experiments.common import ExperimentResult
from repro.secure_memory import SecureMemory
from repro.tree.geometry import TreeGeometry

PAPER_NOTE = (
    "Extension: functional storage accounting (paper Figs. 1/9) and the "
    "arity design space of VAULT-style trees (paper Sec. 6)"
)

_COLUMNS = ["analysis", "configuration", "value"]


def footprint_rows() -> list:
    """Stored metadata for one fully streamed 32KB chunk, per policy."""
    rows = []
    data = bytes(CHUNK_BYTES)
    for policy in ("fixed", "multigranular"):
        memory = SecureMemory(
            1 << 20, keys=KeySet.from_seed(b"ext-meta"), policy=policy
        )
        memory.write(0, data)
        memory.write(0, data)  # second stream applies the lazy switch
        footprint = memory.metadata_footprint()
        rows.append(
            {
                "analysis": "chunk_footprint",
                "configuration": f"{policy}: MAC bytes",
                "value": footprint["mac_bytes"],
            }
        )
        rows.append(
            {
                "analysis": "chunk_footprint",
                "configuration": f"{policy}: tree-node bytes",
                "value": footprint["tree_node_bytes"],
            }
        )
    return rows


def arity_rows() -> list:
    """Tree height / node count across arities for 4GB memory."""
    rows = []
    for arity in (2, 4, 8, 16, 32, 64):
        geometry = TreeGeometry.build(4 << 30, arity=arity)
        total_nodes = sum(geometry.level_counts)
        rows.append(
            {
                "analysis": "arity_design_space",
                "configuration": f"arity {arity}: levels above data",
                "value": geometry.num_levels,
            }
        )
        rows.append(
            {
                "analysis": "arity_design_space",
                "configuration": f"arity {arity}: total tree nodes",
                "value": total_nodes,
            }
        )
    return rows


def promotion_rows() -> list:
    """Verification-path length saved per promotion level (Eq. 2)."""
    geometry = TreeGeometry.build(4 << 30)
    rows = []
    for granularity in GRANULARITIES:
        level = GRANULARITIES.index(granularity)
        path = geometry.num_levels - 1 - level  # nodes below the root
        rows.append(
            {
                "analysis": "promotion_path",
                "configuration": f"{granularity}B counter: levels walked",
                "value": path,
            }
        )
    return rows


def run(
    duration_cycles: Optional[float] = None, seed: int = 0
) -> ExperimentResult:
    """Regenerate the storage/geometry analyses."""
    del duration_cycles, seed  # functional + analytic
    rows = footprint_rows() + promotion_rows() + arity_rows()
    return ExperimentResult(
        experiment="ext_metadata",
        title="Extension -- metadata storage and tree design space",
        columns=_COLUMNS,
        rows=rows,
        notes=[PAPER_NOTE],
    )
