"""Fig. 17: performance-breakdown CDFs of the multi-granular design.

The incremental story: Conventional -> Static-device-best ->
Multi(CTR)-only -> Ours -> BMF&Unused+Ours, each as a CDF of the
normalized execution time over the scenario sweep.
"""

from __future__ import annotations

from typing import Optional

from repro.common.stats import mean, percentile
from repro.experiments.common import ExperimentResult, default_sweep_sample, label
from repro.experiments.sweep import normalized_exec_times, sweep_results

PAPER_NOTE = (
    "Paper Fig. 17/Sec. 5.3: overhead falls 33.9% -> 19.6% (Ours) -> "
    "12.7% (BMF&Unused+Ours); Static-device-best improves only 7.5%, "
    "Multi(CTR)-only 6.5%"
)

SCHEMES = (
    "conventional",
    "static_device",
    "multi_ctr_only",
    "ours",
    "bmf_unused_ours",
)
_COLUMNS = ["scheme", "mean", "p25", "p50", "p75", "p90", "overhead_vs_unsecure"]


def run(
    sample: Optional[int] = None,
    duration_cycles: Optional[float] = None,
    seed: int = 0,
    jobs: Optional[int] = None,
) -> ExperimentResult:
    """Regenerate Fig. 17's CDF summary statistics."""
    if sample is None:
        sample = default_sweep_sample()
    results = sweep_results(sample, duration_cycles, seed, jobs=jobs)
    rows = []
    for scheme in SCHEMES:
        times = normalized_exec_times(results, scheme)
        avg = mean(times)
        rows.append(
            {
                "scheme": label(scheme),
                "mean": avg,
                "p25": percentile(times, 25),
                "p50": percentile(times, 50),
                "p75": percentile(times, 75),
                "p90": percentile(times, 90),
                "overhead_vs_unsecure": avg - 1.0,
            }
        )
    return ExperimentResult(
        experiment="fig17",
        title=(
            f"Fig. 17 -- Performance breakdown CDF summary "
            f"({len(results)} scenarios)"
        ),
        columns=_COLUMNS,
        rows=rows,
        notes=[PAPER_NOTE],
    )
