"""Processing-unit issue models (the per-device simulator substitutes)."""

from repro.devices.issue import DeviceIssueState, device_config_for

__all__ = ["DeviceIssueState", "device_config_for"]
