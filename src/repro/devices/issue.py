"""Per-device issue models: MLP windows, dependency chains, burstiness.

This is the substitute for the paper's per-device simulators
(ChampSim / MGPUSim / mNPUsim): each processing unit replays its
LLC-miss trace under an issue discipline that captures what actually
differentiates the device classes at the memory system:

* **CPU** -- small outstanding window and a high fraction of
  *dependent* loads (pointer chases): added miss latency lands directly
  on the critical path, which is why memory protection hurts CPUs the
  most (paper Fig. 5);
* **GPU** -- deep window, no dependency stalls: latency is hidden, only
  bandwidth matters;
* **NPU** -- medium window with dense DMA-like bursts: protection
  metadata competes with the burst for bandwidth (paper Sec. 5.4).
"""

from __future__ import annotations

import heapq
from typing import List

from repro.common.config import (
    DeviceConfig,
    default_cpu_config,
    default_gpu_config,
    default_npu_config,
)
from repro.common.types import DeviceKind
from repro.workloads.generator import Trace


def device_config_for(kind: DeviceKind, name: str) -> DeviceConfig:
    """Default issue model of a device class (paper Table 3)."""
    if kind is DeviceKind.CPU:
        return default_cpu_config(name)
    if kind is DeviceKind.GPU:
        return default_gpu_config(name)
    return default_npu_config(name)


class DeviceIssueState:
    """Replay cursor + MLP window of one device."""

    __slots__ = (
        "index", "trace", "config", "kind", "cursor",
        "clock", "outstanding", "finish", "compute", "last_read_done",
        "_entries", "_num_entries", "_max_outstanding", "_dependent_loads",
    )

    def __init__(self, index: int, trace: Trace, config: DeviceConfig) -> None:
        self.index = index
        self.trace = trace
        self.config = config
        self.kind = trace.spec.kind
        self.cursor = 0
        self.clock = 0.0
        self.outstanding: List[float] = []
        self.finish = 0.0
        self.compute = 0.0
        self.last_read_done = 0.0
        # Hot-path locals: ``next_issue_time`` runs once per issued
        # request; the attribute chains through Trace/DeviceConfig are
        # flattened here once.
        self._entries = trace.entries
        self._num_entries = len(trace.entries)
        self._max_outstanding = config.max_outstanding
        self._dependent_loads = config.dependent_loads

    @property
    def done(self) -> bool:
        return self.cursor >= self._num_entries

    def is_dependent(self) -> bool:
        """Deterministic per-request dependency draw (pointer chase).

        Hashing the cursor (instead of consuming an RNG) keeps the draw
        identical across schemes, so scheme comparisons stay paired.
        """
        fraction = self._dependent_loads
        if fraction <= 0.0:
            return False
        draw = ((self.cursor * 2654435761 + self.index * 97) & 0xFFFF) / 65536.0
        return draw < fraction

    def next_issue_time(self) -> float:
        """Earliest cycle the next request can issue."""
        gap, _, is_write = self._entries[self.cursor]
        ready = self.clock + gap
        if not is_write and self.is_dependent():
            done = self.last_read_done
            if done > ready:
                ready = done
        outstanding = self.outstanding
        while outstanding and outstanding[0] <= ready:
            heapq.heappop(outstanding)
        if len(outstanding) >= self._max_outstanding:
            head = outstanding[0]
            if head > ready:
                ready = head
        return ready

    def issue(self, at: float, completion: float, is_write: bool) -> None:
        """Commit the issue of the cursor's request at cycle ``at``."""
        gap, _, _ = self._entries[self.cursor]
        self.compute += gap
        self.clock = at
        self.cursor += 1
        outstanding = self.outstanding
        while outstanding and outstanding[0] <= at:
            heapq.heappop(outstanding)
        if not is_write:
            heapq.heappush(outstanding, completion)
            self.last_read_done = completion
        self.finish = max(self.finish, completion, at)
