#!/usr/bin/env python3
"""Model-driven NPU traces: walk real network shapes through the engine.

Instead of the calibrated synthetic workloads, this example generates
NPU miss traces by walking actual network architectures (AlexNet,
Yolo-Tiny, DLRM, NCF, an LSTM RNN) tile by tile -- the way mNPUsim
produces the paper's traces -- and shows what the dynamic granularity
detector makes of each: weight streams promote to 32KB, embedding
gathers stay fine.

Run:  python examples/model_driven_npu.py [scale]
"""

import sys

from repro.common.config import SoCConfig
from repro.common.constants import GRANULARITIES
from repro.schemes.registry import build_scheme
from repro.sim.soc import simulate
from repro.workloads.models import NETWORKS, generate_model_trace, network_summary


def main() -> None:
    scale = int(sys.argv[1]) if len(sys.argv) > 1 else 8
    config = SoCConfig()

    print(f"walking {len(NETWORKS)} networks at 1/{scale} scale\n")
    header = (
        f"{'network':10s} {'requests':>8s} {'conv norm':>9s} {'ours norm':>9s} "
        f"{'64B':>6s} {'512B':>6s} {'4KB':>6s} {'32KB':>6s}"
    )
    print(header)
    print("-" * len(header))

    for network in sorted(NETWORKS):
        trace = generate_model_trace(network, batches=2, scale=scale)
        unsec = simulate([trace], build_scheme("unsecure", config), config)
        conv = simulate(
            [trace], build_scheme("conventional", config), config, warmup=True
        )
        ours_scheme = build_scheme("ours", config)
        ours = simulate([trace], ours_scheme, config, warmup=True)

        base = unsec.devices[0].finish_cycle
        hist = ours_scheme.stats.granularity_hist
        total = max(1, hist.total)
        fractions = [
            hist.buckets.get(granularity, 0) / total
            for granularity in GRANULARITIES
        ]
        print(
            f"{network:10s} {len(trace):8d} "
            f"{conv.devices[0].finish_cycle / base:9.3f} "
            f"{ours.devices[0].finish_cycle / base:9.3f} "
            + " ".join(f"{fraction:6.2f}" for fraction in fractions)
        )

    print("\nAlexNet layer inventory (full scale):")
    for row in network_summary("alexnet"):
        print(
            f"  {row['layer']:6s} {row['kind']:15s} "
            f"weights={row['weight_bytes'] / 1024:9.1f}KB "
            f"macs={row['macs'] / 1e6:8.1f}M"
        )


if __name__ == "__main__":
    main()
