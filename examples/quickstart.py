#!/usr/bin/env python3
"""Quickstart: a working encrypted + integrity-protected memory.

Demonstrates the functional layer end to end:

1. write/read through the multi-granular secure memory;
2. watch the dynamic detector promote a streamed chunk to 32KB
   granularity (one shared counter + one merged MAC);
3. play the attacker: tamper with ciphertext, MACs and counters, and
   replay stale data -- every attack is detected.

Run:  python examples/quickstart.py
"""

from repro.common.errors import IntegrityError, ReplayError, SecurityError
from repro.crypto import KeySet
from repro.secure_memory import SecureMemory


def banner(text: str) -> None:
    print(f"\n=== {text} ===")


def main() -> None:
    banner("1. Basic protected reads and writes")
    mem = SecureMemory(
        region_bytes=1 << 20,
        keys=KeySet.from_seed(b"quickstart"),
        policy="multigranular",
    )
    mem.write(0, b"confidential payload".ljust(64, b"\0"))
    print("plaintext readback:", mem.read(0, 64)[:20])
    print("ciphertext in DRAM:", mem.dram.read_line(0)[:20].hex(), "...")

    banner("2. Dynamic granularity detection")
    chunk = bytes(range(256)) * 128  # 32KB of data
    print("granularity before streaming:", mem.granularity_of(0), "bytes")
    mem.write(0, chunk)  # stream every line of the chunk
    print("granularity after streaming: ", mem.granularity_of(0), "bytes")
    print("lazy switches performed:     ", mem.switches)
    assert mem.read(0, len(chunk)) == chunk
    print("32KB region verified against ONE merged MAC + shared counter")

    banner("3. Physical attacks are detected")
    attacks = []

    def attempt(label, mutate, victim_addr):
        try:
            mutate()
            mem.read(victim_addr, 64)
            attacks.append((label, "MISSED!"))
        except (IntegrityError, ReplayError) as exc:
            attacks.append((label, f"detected ({type(exc).__name__})"))

    attempt("flip a ciphertext bit", lambda: mem.tamper_data(64 * 5), 64 * 5)

    fresh = SecureMemory(1 << 20, keys=KeySet.from_seed(b"q2"))
    fresh.write(0, b"v1" * 32)
    stale = fresh.snapshot(0)
    fresh.write(0, b"v2" * 32)

    def replay():
        fresh.replay(0, stale)

    try:
        replay()
        fresh.read(0, 64)
        attacks.append(("replay stale data", "MISSED!"))
    except SecurityError as exc:
        attacks.append(("replay stale data", f"detected ({type(exc).__name__})"))

    counter_mem = SecureMemory(1 << 20, keys=KeySet.from_seed(b"q3"))
    counter_mem.write(0, b"x" * 64)
    counter_mem.tree.tamper_counter(0)
    counter_mem.tree.drop_trust_cache()
    try:
        counter_mem.read(0, 64)
        attacks.append(("tamper a counter", "MISSED!"))
    except SecurityError as exc:
        attacks.append(("tamper a counter", f"detected ({type(exc).__name__})"))

    for label, outcome in attacks:
        print(f"  {label:28s} -> {outcome}")
    assert all("detected" in outcome for _, outcome in attacks)

    banner("4. The multi-granular tree after promotion (Figs. 1/10)")
    print(mem.tree.render())
    print("(R = on-chip root, # = stored node, . = pristine/pruned)")
    print("stored metadata:", mem.metadata_footprint()["total_bytes"], "bytes",
          "for a 32KB protected chunk")

    banner("5. Switching statistics (paper Table 2)")
    for category, ratio in mem.switching.ratios().items():
        print(f"  {category:24s} {ratio:8.4f}")


if __name__ == "__main__":
    main()
