#!/usr/bin/env python3
"""Real-world pipelines from the paper's Sec. 5.5 (Table 6 / Fig. 21).

Finance:   GPU Page-Rank -> CPU Route-Planning -> NPU DL-Recommendation
AutoDrive: GPU Stencil2d -> NPU Yolo-Tiny      -> CPU Stream-Clustering

Consecutive stages share 4MB inter-stage buffers (overlapping address
slices), so producer writes and consumer reads hit the same chunks --
the mixed access patterns the paper's im2col discussion warns about.

Run:  python examples/realworld_pipelines.py [duration]
"""

import sys

from repro.experiments.common import label
from repro.sim import REALWORLD_SCENARIOS, run_scenario

SCHEMES = (
    "unsecure",
    "conventional",
    "static_device",
    "ours",
    "bmf_unused_ours",
)


def main() -> None:
    duration = float(sys.argv[1]) if len(sys.argv) > 1 else 20_000.0

    for scenario in REALWORLD_SCENARIOS:
        stages = " -> ".join(scenario.workload_names)
        print(f"\n### {scenario.name}: {stages}")
        results = run_scenario(scenario, SCHEMES, duration_cycles=duration)
        base = results["unsecure"]
        for name in SCHEMES[1:]:
            run = results[name]
            norm = run.mean_normalized_exec_time(base)
            print(
                f"  {label(name):24s} norm exec {norm:6.3f} "
                f"(overhead {100 * (norm - 1):+5.1f}%)"
            )
        print("  per-stage (ours):")
        for device, norm in zip(
            base.devices, results["ours"].normalized_exec_times(base)
        ):
            print(f"    {device.name:6s} {device.workload:6s} {norm:6.3f}")


if __name__ == "__main__":
    main()
