#!/usr/bin/env python3
"""Walk through the dynamic granularity-detection pipeline (paper Sec. 4.4).

Feeds hand-crafted access patterns through the access tracker
(Fig. 12), the detection algorithm (Algorithm 1) and the granularity
table with lazy switching, printing the ``stream_part`` bitmap and the
resolved granularity at each step.

Run:  python examples/granularity_detection.py
"""

from repro.common.constants import CHUNK_BYTES
from repro.core.detector import detect_stream_partitions, merge_detection
from repro.core.gran_table import GranularityTable
from repro.core.tracker import AccessTracker
from repro.core import stream_part


def show_bits(bits: int) -> str:
    """Render a 64-bit stream_part bitmap as partition groups."""
    text = format(bits, "064b")[::-1]  # partition 0 first
    return " ".join(text[i : i + 8] for i in range(0, 64, 8))


def feed(tracker, table, accesses, start_cycle=0):
    """Push (cycle, addr) pairs through tracker -> detector -> table."""
    for cycle, addr in accesses:
        for eviction in tracker.observe(addr, start_cycle + cycle):
            chunk = eviction.entry.chunk_index
            bits = merge_detection(
                table.entry_by_chunk(chunk).next, eviction.entry.access_bits
            )
            table.record_detection(chunk, bits)
            print(
                f"  tracker evicted chunk {chunk} ({eviction.reason}); "
                f"detected stream_part:"
            )
            print(f"    {show_bits(bits)}")


def main() -> None:
    tracker = AccessTracker()
    table = GranularityTable()

    print("=== 1. Stream one full 32KB chunk (512 sequential lines) ===")
    feed(tracker, table, ((i, i * 64) for i in range(512)))
    granularity, event = table.resolve(0, is_write=False)
    print(f"  next access resolves at {granularity}B "
          f"(switch fired: {event is not None})")

    print("\n=== 2. Stream only the first 4KB group of chunk 1 ===")
    base = CHUNK_BYTES
    feed(tracker, table, ((i, base + i * 64) for i in range(64)), 1000)
    for eviction in tracker.drain():  # force classification
        chunk = eviction.entry.chunk_index
        bits = merge_detection(
            table.entry_by_chunk(chunk).next, eviction.entry.access_bits
        )
        table.record_detection(chunk, bits)
        print(f"  drained chunk {chunk}; stream_part:")
        print(f"    {show_bits(bits)}")
    granularity, _ = table.resolve(base, is_write=False)
    print(f"  first 4KB group resolves at {granularity}B")
    granularity, _ = table.resolve(base + 8192, is_write=False)
    print(f"  untouched region resolves at {granularity}B")

    print("\n=== 3. A single 512B stream partition in chunk 2 ===")
    base = 2 * CHUNK_BYTES + 3 * 512  # partition 3
    vector_accesses = [(i, base + i * 64) for i in range(8)]
    feed(tracker, table, vector_accesses, 2000)
    for eviction in tracker.drain():
        chunk = eviction.entry.chunk_index
        bits = merge_detection(
            table.entry_by_chunk(chunk).next, eviction.entry.access_bits
        )
        table.record_detection(chunk, bits)
        print(f"  drained chunk {chunk}; stream_part:")
        print(f"    {show_bits(bits)}")
    granularity, _ = table.resolve(base, is_write=False)
    print(f"  partition 3 resolves at {granularity}B")

    print("\n=== 4. Raw Algorithm 1 on a synthetic access vector ===")
    vector = (0xFF << 0) | (0xFF << 16 * 8 // 8 * 8)  # partitions 0 and 16
    vector = 0xFF | (0xFF << (16 * 8))
    bits = detect_stream_partitions(vector)
    print(f"  canonical bits : {show_bits(bits)}")
    print(f"  paper encoding : {stream_part.algorithm1_encoding(bits):#066b}")

    print("\n=== 5. Granularity table contents ===")
    for chunk, entry in sorted(table.chunks()):
        if entry.current or entry.next:
            print(
                f"  chunk {chunk}: current={entry.current:#018x} "
                f"next={entry.next:#018x} detections={entry.detections}"
            )


if __name__ == "__main__":
    main()
