#!/usr/bin/env python3
"""Bring your own trace: save, reload and protect an external miss stream.

Shows the trace-file workflow: generate a trace (here a tiled-GEMM GPU
kernel walk standing in for a converted MGPUSim/ChampSim dump), save it
in the portable format, reload it, and compare protection schemes on
the reloaded stream.  The on-disk format is gzip text --
``<gap> <hexaddr> <R|W>`` -- so converting your own simulator's dump is
a ten-line script.

Run:  python examples/bring_your_own_trace.py [path]
"""

import sys
import tempfile
from pathlib import Path

from repro.common.config import SoCConfig
from repro.experiments.common import label
from repro.schemes.registry import build_scheme
from repro.sim.soc import simulate
from repro.workloads.kernels import tiled_gemm
from repro.workloads.trace_io import load_trace, save_trace


def main() -> None:
    if len(sys.argv) > 1:
        path = Path(sys.argv[1])
        print(f"loading external trace {path}")
    else:
        path = Path(tempfile.gettempdir()) / "repro_mm_demo.trace.gz"
        trace = tiled_gemm(n=256, tile=64)
        save_trace(trace, path)
        print(f"generated a tiled-GEMM trace and saved it to {path}")

    trace = load_trace(path)
    print(
        f"loaded {len(trace)} requests "
        f"({trace.spec.kind.value}, footprint "
        f"{trace.spec.footprint_bytes / 1e6:.1f}MB)\n"
    )

    config = SoCConfig()
    base = simulate([trace], build_scheme("unsecure", config), config)
    base_finish = base.devices[0].finish_cycle

    print(f"{'scheme':24s} {'norm exec':>9s} {'traffic MB':>10s}")
    for name in ("conventional", "adaptive", "ours", "bmf_unused_ours"):
        scheme = build_scheme(
            name, config, footprint_bytes=trace.max_addr
        )
        result = simulate([trace], scheme, config, warmup=True)
        print(
            f"{label(name):24s} "
            f"{result.devices[0].finish_cycle / base_finish:9.3f} "
            f"{result.total_traffic_bytes / 1e6:10.2f}"
        )


if __name__ == "__main__":
    main()
