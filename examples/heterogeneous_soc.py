#!/usr/bin/env python3
"""Simulate a heterogeneous SoC scenario under every protection scheme.

Reproduces one column of the paper's evaluation: the `cc1` scenario
(xal on the CPU, matrix-multiply on the GPU, AlexNet + DLRM on the two
NPUs) runs under the unsecured baseline, the conventional fixed-64B
scheme, the prior-work baselines, the paper's multi-granular scheme and
the combined subtree variant.

Run:  python examples/heterogeneous_soc.py [scenario] [duration]
"""

import sys

from repro.experiments.common import label
from repro.sim import run_scenario, selected_scenario

SCHEMES = (
    "unsecure",
    "conventional",
    "static_device",
    "adaptive",
    "common_ctr",
    "multi_ctr_only",
    "ours",
    "bmf_unused",
    "bmf_unused_ours",
)


def main() -> None:
    scenario_name = sys.argv[1] if len(sys.argv) > 1 else "cc1"
    duration = float(sys.argv[2]) if len(sys.argv) > 2 else 20_000.0
    scenario = selected_scenario(scenario_name)

    print(f"scenario {scenario.name}: {' + '.join(scenario.workload_names)}")
    print(f"simulating {len(SCHEMES)} schemes ({duration:.0f} cycles/device)\n")

    results = run_scenario(scenario, SCHEMES, duration_cycles=duration)
    base = results["unsecure"]

    header = (
        f"{'scheme':28s} {'norm exec':>9s} {'traffic MB':>10s} "
        f"{'sec misses':>10s} {'coarse %':>8s}"
    )
    print(header)
    print("-" * len(header))
    for name in SCHEMES:
        run = results[name]
        norm = run.mean_normalized_exec_time(base)
        hist = run.scheme.stats.granularity_hist
        coarse = 1.0 - hist.fraction(64) if hist.total else 0.0
        print(
            f"{label(name):28s} {norm:9.3f} "
            f"{run.total_traffic_bytes / 1e6:10.2f} "
            f"{run.security_cache_misses:10d} {100 * coarse:7.1f}%"
        )

    print("\nper-device normalized execution time (conventional vs ours):")
    conv = results["conventional"].normalized_exec_times(base)
    ours = results["ours"].normalized_exec_times(base)
    for device, c, o in zip(base.devices, conv, ours):
        arrow = "improved" if o < c else "regressed"
        print(
            f"  {device.name:6s} ({device.workload:6s}) "
            f"conventional={c:.3f}  ours={o:.3f}  [{arrow}]"
        )


if __name__ == "__main__":
    main()
