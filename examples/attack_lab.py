#!/usr/bin/env python3
"""Attack lab: exercise the paper's threat model against both policies.

The attacker of Sec. 2.5 controls off-chip memory and the bus.  This
script drives the seeded fault-injection campaign (``repro.faults``)
over the full attack catalog -- bit-flips, splices, rollbacks, MAC
erasure, counter-tree tamper and corruption staged *inside* the lazy
granularity-switch window -- across both policies, all granularities
and all failure policies, then demonstrates graceful degradation: a
quarantined chunk failing closed while its neighbours keep serving and
fresh writes heal it.

Run:  python examples/attack_lab.py
"""

from repro.common.constants import CACHELINE_BYTES, CHUNK_BYTES
from repro.common.errors import QuarantineError, SecurityError
from repro.crypto import KeySet
from repro.faults.campaign import CampaignConfig, run_campaign
from repro.secure_memory import SecureMemory


def campaign_battery() -> None:
    """The detection-coverage matrix over the whole catalog."""
    result = run_campaign(CampaignConfig(seed=0, trials=2))
    print(result.format_table())
    assert result.clean, "silent corruption -- security violation!"


def quarantine_demo() -> None:
    """Graceful degradation: contain, keep serving, heal."""
    print()
    print("# quarantine / heal walkthrough")
    memory = SecureMemory(
        256 * 1024,
        keys=KeySet.from_seed(b"lab-quarantine"),
        failure_policy="quarantine",
    )
    memory.write(0, bytes(range(256)) * 128)          # chunk 0: streamed
    memory.write(CHUNK_BYTES, b"neighbour".ljust(64, b"\0"))
    print(f"chunk 0 sealed at {memory.granularity_of(0)}B granularity")

    memory.tamper_data(1024)                           # physical bit-flip
    try:
        memory.read(1024, CACHELINE_BYTES)
    except QuarantineError as exc:
        print(f"tamper detected and contained: {exc}")
    assert memory.granularity_of(0) == CACHELINE_BYTES, "region not demoted"
    print(f"poisoned region demoted to 64B; "
          f"{len(memory.quarantined_lines())} lines fail closed")

    neighbour = memory.read(CHUNK_BYTES, CACHELINE_BYTES)
    assert neighbour.startswith(b"neighbour")
    print("untouched chunk still serves reads")

    memory.write(1024, b"healed".ljust(64, b"\0"))     # fresh write heals
    assert memory.read(1024, CACHELINE_BYTES).startswith(b"healed")
    assert not memory.is_quarantined(1024)
    print("fresh write healed the line; "
          f"{len(memory.quarantined_lines())} lines still quarantined")


def protected_table_demo() -> None:
    """The granularity table itself is an attack surface: forging an
    entry would misdirect the counter/MAC address computation.  The
    paper stores it in a region guarded by a discrete fixed tree."""
    from repro.core.stream_part import FULL_MASK
    from repro.secure_memory import ProtectedTableStore

    print()
    store = ProtectedTableStore(chunks=32, keys=KeySet.from_seed(b"tbl"))
    store.store(3, FULL_MASK, FULL_MASK)
    store.tamper_entry(3)
    try:
        store.load(3)
        raise AssertionError("forged table entry accepted!")
    except SecurityError as exc:
        print(f"forged granularity-table entry: DETECTED ({type(exc).__name__})")


def main() -> None:
    campaign_battery()
    quarantine_demo()
    protected_table_demo()
    print()
    print("attack lab passed: every attack detected, containment held")


if __name__ == "__main__":
    main()
