#!/usr/bin/env python3
"""Attack lab: exercise the paper's threat model against both policies.

The attacker of Sec. 2.5 controls off-chip memory and the bus.  This
script runs a battery of physical attacks against the fixed-granular
baseline and the multi-granular scheme (including attacks staged around
granularity switches) and reports the detection verdicts.

Run:  python examples/attack_lab.py
"""

from repro.common.errors import SecurityError
from repro.crypto import KeySet
from repro.secure_memory import SecureMemory

CHUNK = bytes(range(256)) * 128  # 32KB


def run_attack(label, build, attack, victim_read):
    """Build a memory, mutate it off-chip, and try the victim read."""
    memory = build()
    attack(memory)
    try:
        victim_read(memory)
    except SecurityError as exc:
        return label, f"DETECTED ({type(exc).__name__})"
    return label, "MISSED -- security violation!"


def fresh(policy, tag):
    def build():
        memory = SecureMemory(
            1 << 20, keys=KeySet.from_seed(tag.encode()), policy=policy
        )
        memory.write(0, CHUNK)  # stream chunk 0 (promotes when dynamic)
        memory.write(64 * 600, b"fine data".ljust(64, b"\0"))
        return memory

    return build


def main() -> None:
    verdicts = []
    for policy in ("fixed", "multigranular"):
        build = fresh(policy, f"lab-{policy}")

        verdicts.append(run_attack(
            f"[{policy}] bit-flip in streamed data",
            build,
            lambda m: m.tamper_data(64 * 100),
            lambda m: m.read(64 * 100, 64),
        ))
        verdicts.append(run_attack(
            f"[{policy}] bit-flip in fine data",
            build,
            lambda m: m.tamper_data(64 * 600, flip_mask=0x40),
            lambda m: m.read(64 * 600, 64),
        ))
        verdicts.append(run_attack(
            f"[{policy}] MAC corruption",
            build,
            lambda m: m.tamper_mac(0),
            lambda m: m.read(0, 64),
        ))
        verdicts.append(run_attack(
            f"[{policy}] counter rollback",
            build,
            lambda m: (m.tree.tamper_counter(64 * 600), m.tree.drop_trust_cache()),
            lambda m: m.read(64 * 600, 64),
        ))

        def replay_attack(memory):
            stale = memory.snapshot(64 * 600)
            memory.write(64 * 600, b"new value".ljust(64, b"\0"))
            memory.replay(64 * 600, stale)

        verdicts.append(run_attack(
            f"[{policy}] data replay",
            build,
            replay_attack,
            lambda m: m.read(64 * 600, 64),
        ))

        def relocate(memory):
            stolen = memory.dram.read_line(0)
            memory.dram.write_line(64 * 600, stolen)

        verdicts.append(run_attack(
            f"[{policy}] ciphertext relocation",
            build,
            relocate,
            lambda m: m.read(64 * 600, 64),
        ))

    def cross_region_replay(memory):
        # Replay one line of a *promoted* region after a region rewrite:
        # the shared counter advanced, so the stale line must fail the
        # merged-MAC check.
        stale = memory.dram.snapshot_line(64 * 3)
        memory.write(0, bytes(reversed(CHUNK)))
        memory.dram.replay_line(64 * 3, stale)

    verdicts.append(run_attack(
        "[multigranular] stale line inside merged region",
        fresh("multigranular", "lab-merge"),
        cross_region_replay,
        lambda m: m.read(64 * 3, 64),
    ))

    # The granularity table itself is an attack surface: forging an
    # entry would misdirect the counter/MAC address computation.  The
    # paper stores it in a region guarded by a discrete fixed tree.
    from repro.core.stream_part import FULL_MASK
    from repro.secure_memory import ProtectedTableStore

    def build_table():
        store = ProtectedTableStore(chunks=32, keys=KeySet.from_seed(b"tbl"))
        store.store(3, FULL_MASK, FULL_MASK)
        return store

    verdicts.append(run_attack(
        "[table] forge a granularity-table entry",
        build_table,
        lambda store: store.tamper_entry(3),
        lambda store: store.load(3),
    ))

    width = max(len(label) for label, _ in verdicts)
    print(f"{'attack'.ljust(width)}  verdict")
    print("-" * (width + 40))
    missed = 0
    for label, verdict in verdicts:
        print(f"{label.ljust(width)}  {verdict}")
        missed += "MISSED" in verdict
    print("-" * (width + 40))
    print(f"{len(verdicts)} attacks, {len(verdicts) - missed} detected, "
          f"{missed} missed")
    assert missed == 0


if __name__ == "__main__":
    main()
