"""Bench: regenerate Fig. 16 (exec / traffic / misses vs prior work)."""

from repro.experiments import fig16_prior_bars
from repro.experiments.common import label

from conftest import bench_duration, bench_sample, run_once


def test_fig16_prior_bars(benchmark, show):
    result = run_once(
        benchmark,
        fig16_prior_bars.run,
        sample=bench_sample(),
        duration_cycles=bench_duration(),
    )
    show(result)
    rows = {row["scheme"]: row for row in result.rows}
    # Prior dual-granularity schemes carry more traffic and more
    # security-cache misses than Ours (paper Fig. 16).
    assert rows[label("adaptive")]["traffic_vs_ours"] > 1.0
    assert rows[label("adaptive")]["misses_vs_ours"] > 1.0
    assert rows[label("common_ctr")]["misses_vs_ours"] > 1.0
    # The combined scheme reduces both below Ours.
    assert rows[label("bmf_unused_ours")]["traffic_vs_ours"] < 1.0
    assert rows[label("bmf_unused_ours")]["misses_vs_ours"] < 1.0
