"""Bench: regenerate Table 4 (workload classification)."""

from repro.experiments import tab04_workloads

from conftest import bench_duration, run_once


def test_tab04_workloads(benchmark, show):
    result = run_once(
        benchmark, tab04_workloads.run, duration_cycles=bench_duration()
    )
    show(result)
    assert len(result.rows) == 16
    agree = sum(
        1
        for row in result.rows
        if row["measured_pattern"] == row["spec_pattern"]
        or row["spec_pattern"] == "d"
    )
    assert agree >= 10  # classification broadly matches the calibration
