"""Bench: phase-stress and seed-robustness extension."""

from repro.experiments import ext_phases

from conftest import bench_duration, run_once


def test_ext_phases(benchmark, show):
    result = run_once(
        benchmark, ext_phases.run, duration_cycles=bench_duration(12_000.0)
    )
    show(result)
    values = {row["configuration"]: row["value"] for row in result.rows}
    # Phase changes must raise the misprediction rate (toward the
    # paper's non-stationary regime).
    assert values["phased: misprediction rate"] > (
        values["stationary: misprediction rate"]
    )
    # The coarse scenario's gain is positive and robust across seeds.
    assert values["cc1: mean ours gain (3 seeds)"] > 0.0
