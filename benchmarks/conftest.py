"""Benchmark harness configuration.

Each benchmark regenerates one paper table/figure via
``repro.experiments`` and prints the rows the paper reports.  Durations
and sweep sizes default to values that complete the full suite in a
few minutes; scale up for higher fidelity with:

    REPRO_SIM_DURATION=120000 REPRO_SWEEP_SAMPLE=60 \
        pytest benchmarks/ --benchmark-only
    REPRO_FULL_SWEEP=1 ...            # all 250 scenarios (slow)
"""

from __future__ import annotations

import os

import pytest


def bench_duration(default: float = 20_000.0) -> float:
    raw = os.environ.get("REPRO_SIM_DURATION")
    return float(raw) if raw else default


def bench_sample(default: int = 12):
    raw = os.environ.get("REPRO_SWEEP_SAMPLE")
    return int(raw) if raw else default


@pytest.fixture()
def show(capsys):
    """Print an experiment table so it survives pytest capture."""

    def _show(result) -> None:
        with capsys.disabled():
            print()
            print(result.format_table())

    return _show


def run_once(benchmark, fn, *args, **kwargs):
    """Run an experiment exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1, iterations=1)
