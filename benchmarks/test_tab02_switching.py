"""Bench: regenerate Table 2 (switching-category ratios)."""

from repro.experiments import tab02_switching

from conftest import bench_duration, run_once


def test_tab02_switching(benchmark, show):
    result = run_once(
        benchmark, tab02_switching.run, duration_cycles=bench_duration()
    )
    show(result)
    ratios = {row["category"]: row["ratio"] for row in result.rows}
    assert ratios["correct_prediction"] > 0.5  # paper: 73.5%
    assert abs(sum(ratios.values()) - 1.0) < 1e-6
