"""Bench: regenerate Fig. 6 (per-device vs per-partition granularity)."""

from repro.experiments import fig06_per_device

from conftest import bench_duration, run_once


def test_fig06_per_device(benchmark, show):
    result = run_once(
        benchmark, fig06_per_device.run, duration_cycles=bench_duration()
    )
    show(result)
    assert len(result.rows) == 4
    # Per-device static inflates traffic relative to conventional;
    # the per-partition dynamic scheme does not (paper Sec. 3.3).
    for row in result.rows:
        if row["scheme"] == "per-device-best":
            assert row["traffic_vs_conventional"] > 1.0
        else:
            assert row["traffic_vs_conventional"] < 1.1
