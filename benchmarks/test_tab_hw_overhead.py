"""Bench: regenerate the Sec. 4.5 hardware-overhead table."""

from repro.experiments import tab_hw_overhead

from conftest import run_once


def test_tab_hw_overhead(benchmark, show):
    result = run_once(benchmark, tab_hw_overhead.run)
    show(result)
    quantities = {row["component"]: row["quantity"] for row in result.rows}
    assert "841B" in str(
        quantities["access tracker total (12 entries)"]
    )  # paper: 842B (rounding)
    assert "2MB" in str(quantities["granularity table, 4GB memory"])
