"""Bench: regenerate Fig. 15 (CDF vs prior work over the sweep)."""

from repro.experiments import fig15_cdf_prior
from repro.experiments.common import label

from conftest import bench_duration, bench_sample, run_once


def test_fig15_cdf_prior(benchmark, show):
    result = run_once(
        benchmark,
        fig15_cdf_prior.run,
        sample=bench_sample(),
        duration_cycles=bench_duration(),
    )
    show(result)
    means = {row["scheme"]: row["mean"] for row in result.rows}
    # Paper Sec. 5.2 orderings.
    assert means[label("ours")] < means[label("adaptive")]
    assert means[label("ours")] < means[label("common_ctr")]
    assert means[label("bmf_unused_ours")] < means[label("bmf_unused")]
    assert means[label("bmf_unused_ours")] < means[label("ours")]
