"""Bench: regenerate Fig. 19 (selected-scenario analysis, 3 panels)."""

from repro.experiments import fig19_selected
from repro.common.stats import mean

from conftest import bench_duration, run_once


def test_fig19_selected(benchmark, show):
    panels = run_once(
        benchmark, fig19_selected.run, duration_cycles=bench_duration()
    )
    for key in ("a", "b", "c"):
        show(panels[key])

    rows = panels["a"].rows
    gain = {
        row["scenario"]: (row["conventional"] - row["ours"])
        / row["conventional"]
        for row in rows
    }
    groups = {"ff": ["ff1", "ff2", "ff3"], "cc": ["cc1", "cc2", "cc3"]}
    cc_gain = mean([gain[s] for s in groups["cc"]])
    ff_gain = mean([gain[s] for s in groups["ff"]])
    # Paper Fig. 19 (a): coarse scenarios gain far more than fine ones.
    assert cc_gain > ff_gain
    # Fig. 19 (b): coarse scenarios expose more 32KB stream chunks.
    dist = {row["scenario"]: row for row in panels["b"].rows}
    cc_32k = mean([dist[s]["32KB"] for s in groups["cc"]])
    ff_32k = mean([dist[s]["32KB"] for s in groups["ff"]])
    assert cc_32k > ff_32k
