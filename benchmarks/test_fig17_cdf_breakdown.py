"""Bench: regenerate Fig. 17 (breakdown CDFs)."""

from repro.experiments import fig17_cdf_breakdown
from repro.experiments.common import label

from conftest import bench_duration, bench_sample, run_once


def test_fig17_cdf_breakdown(benchmark, show):
    result = run_once(
        benchmark,
        fig17_cdf_breakdown.run,
        sample=bench_sample(),
        duration_cycles=bench_duration(),
    )
    show(result)
    means = {row["scheme"]: row["mean"] for row in result.rows}
    # The paper's incremental story: each step reduces overhead.
    assert means[label("ours")] < means[label("conventional")]
    assert means[label("bmf_unused_ours")] < means[label("ours")]
    assert means[label("multi_ctr_only")] < means[label("conventional")]
