"""Bench: regenerate Fig. 5 (conventional overhead breakdown)."""

from repro.experiments import fig05_breakdown

from conftest import bench_duration, run_once


def test_fig05_breakdown(benchmark, show):
    result = run_once(
        benchmark, fig05_breakdown.run, duration_cycles=bench_duration()
    )
    show(result)
    rows = {row["class"]: row for row in result.rows}
    # Both counters and MACs contribute (Sec. 3.2) and the hetero
    # system pays a substantial combined overhead.
    assert rows["hetero"]["total_overhead"] > 0.10
    for cls in ("cpu", "gpu", "npu", "hetero"):
        assert rows[cls]["mac_overhead"] >= 0.0
