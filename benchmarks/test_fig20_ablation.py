"""Bench: regenerate Fig. 20 (dual-granularity / switching ablations)."""

from repro.experiments import fig20_ablation

from conftest import bench_duration, run_once


def test_fig20_ablation(benchmark, show):
    result = run_once(
        benchmark, fig20_ablation.run, duration_cycles=bench_duration()
    )
    show(result)
    mean_row = result.rows[-1]
    assert mean_row["scenario"] == "MEAN"
    # Removing switching overhead can only help (paper: +4.4%).
    assert mean_row["ours_no_switch"] <= mean_row["ours"] + 0.01
    assert mean_row["bmf_no_switch"] <= mean_row["bmf_unused_ours"] + 0.01
    # Dual granularity gives up part of the multi-granular win on the
    # mixed-granularity scenarios (paper: 3.3% average).
    assert mean_row["ours_dual"] >= mean_row["ours"] - 0.02
