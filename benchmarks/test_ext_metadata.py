"""Bench: metadata storage accounting + tree design space."""

from repro.experiments import ext_metadata

from conftest import run_once


def test_ext_metadata(benchmark, show):
    result = run_once(benchmark, ext_metadata.run)
    show(result)
    values = {row["configuration"]: row["value"] for row in result.rows}
    # Promotion collapses a chunk's 4KB of MACs to one 8B MAC and
    # prunes all tree nodes below the promoted counter.
    assert values["fixed: MAC bytes"] == 4096
    assert values["multigranular: MAC bytes"] == 8
    assert values["multigranular: tree-node bytes"] < (
        values["fixed: tree-node bytes"]
    )
    # Higher arity flattens the tree (VAULT's lever).
    assert values["arity 64: levels above data"] < (
        values["arity 8: levels above data"]
    )
    # Promotion shortens the verification walk by one level per step.
    assert values["64B counter: levels walked"] - 3 == (
        values["32768B counter: levels walked"]
    )
