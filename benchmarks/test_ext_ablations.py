"""Bench: extension design-parameter sweeps (beyond the paper)."""

from repro.experiments import ext_ablations

from conftest import bench_duration, run_once


def test_ext_ablations(benchmark, show):
    result = run_once(
        benchmark, ext_ablations.run, duration_cycles=bench_duration(10_000.0)
    )
    show(result)
    # Bandwidth sweep sanity: more bandwidth -> lower conventional
    # overhead (protection traffic matters less).
    bw_rows = [
        row for row in result.rows
        if row["parameter"] == "bandwidth_bytes_per_cycle"
        and row["scenario"] == "c1"
    ]
    by_value = {row["value"]: row["conventional"] for row in bw_rows}
    assert by_value[34.0] <= by_value[8.5]
    # Ours keeps a nonnegative mean advantage across tracker sizes.
    tracker_rows = [
        row for row in result.rows if row["parameter"] == "tracker_entries"
    ]
    mean_gain = sum(row["ours_gain"] for row in tracker_rows) / len(tracker_rows)
    assert mean_gain > -0.05
