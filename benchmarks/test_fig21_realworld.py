"""Bench: regenerate Fig. 21 (Finance / AutoDrive pipelines)."""

from repro.experiments import fig21_realworld
from repro.experiments.common import label

from conftest import bench_duration, run_once


def test_fig21_realworld(benchmark, show):
    result = run_once(
        benchmark, fig21_realworld.run, duration_cycles=bench_duration()
    )
    show(result)
    by_key = {(row["pipeline"], row["scheme"]): row for row in result.rows}
    for pipeline in ("finance", "autodrive"):
        conv = by_key[(pipeline, label("conventional"))]["norm_exec"]
        ours = by_key[(pipeline, label("ours"))]["norm_exec"]
        combined = by_key[(pipeline, label("bmf_unused_ours"))]["norm_exec"]
        # Paper Fig. 21: Ours reduces the conventional overhead and the
        # subtree combination reduces it further.
        assert ours < conv
        assert combined < ours
