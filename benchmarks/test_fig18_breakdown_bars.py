"""Bench: regenerate Fig. 18 (breakdown bars)."""

from repro.experiments import fig18_breakdown_bars
from repro.experiments.common import label

from conftest import bench_duration, bench_sample, run_once


def test_fig18_breakdown_bars(benchmark, show):
    result = run_once(
        benchmark,
        fig18_breakdown_bars.run,
        sample=bench_sample(),
        duration_cycles=bench_duration(),
    )
    show(result)
    rows = {row["scheme"]: row for row in result.rows}
    conv = rows[label("conventional")]
    ours = rows[label("ours")]
    combined = rows[label("bmf_unused_ours")]
    # Ours cuts traffic and security-cache misses vs conventional.
    assert ours["traffic_vs_unsecure"] < conv["traffic_vs_unsecure"]
    assert ours["misses_vs_conventional"] < 1.0
    assert combined["misses_vs_conventional"] < ours["misses_vs_conventional"]
