"""Bench: regenerate Fig. 4 (stream-chunk ratios per workload)."""

from repro.experiments import fig04_stream_chunks

from conftest import bench_duration, run_once


def test_fig04_stream_chunks(benchmark, show):
    result = run_once(
        benchmark, fig04_stream_chunks.run, duration_cycles=bench_duration()
    )
    show(result)
    assert len(result.rows) == 14
    ratios = {row["workload"]: row for row in result.rows}
    # Shape checks mirroring the paper's Fig. 4 narrative.
    assert ratios["alex"]["32KB"] > 0.5          # alex is 32KB-dominated
    assert ratios["bw"]["64B"] > 0.7             # CPU is fine-dominated
    assert ratios["mm"]["4KB"] + ratios["mm"]["32KB"] > 0.5
